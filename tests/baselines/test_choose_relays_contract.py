"""The ``choose_relays`` batched contract at its edges: the batched
method must agree with a sender-by-sender scalar walk even when the
sender set contains heads, when every head is dead, and when the
overlay collapses to one head — and the default implementation must
behave on empty input.
"""

import numpy as np
import pytest

from repro.analysis import PROTOCOLS
from repro.baselines.base import ClusteringProtocol, NearestHeadRelayMixin
from repro.simulation.state import NetworkState
from tests.conftest import make_config

# Protocols whose relay choice draws RNG or mutates learning state get
# fresh twin states for the scalar/batched comparison.
CONTRACT_PROTOCOLS = sorted(PROTOCOLS)


class _ScriptedProtocol(ClusteringProtocol):
    """Minimal concrete protocol exercising the base-class default."""

    name = "scripted"

    def select_cluster_heads(self, state):  # pragma: no cover - unused
        return np.empty(0, dtype=np.intp)

    def choose_relay(self, state, node, heads, queue_lengths):
        # Deterministic, node-dependent: round-robin over heads.
        return int(heads[node % heads.size])


class _NearestProtocol(NearestHeadRelayMixin, _ScriptedProtocol):
    name = "nearest"

    def choose_relay(self, state, node, heads, queue_lengths):
        d = state.distances_from(node, heads)
        return int(heads[int(d.argmin())])


def fresh(seed=0):
    return NetworkState(make_config(seed=seed))


def elected(state, proto):
    proto.prepare(state)
    return proto.select_cluster_heads(state)


class TestDefaultImplementation:
    def test_empty_senders_yield_empty_intp(self):
        state = fresh()
        proto = _ScriptedProtocol()
        heads = np.asarray([1, 2], dtype=np.intp)
        out = proto.choose_relays(
            state, np.empty(0, dtype=np.intp), heads, np.zeros(2)
        )
        assert out.size == 0
        assert out.dtype == np.intp

    def test_matches_scalar_walk_in_order(self):
        state = fresh()
        proto = _ScriptedProtocol()
        heads = np.asarray([3, 7, 11], dtype=np.intp)
        senders = np.asarray([0, 5, 9, 14], dtype=np.intp)
        q = np.zeros(heads.size)
        want = [proto.choose_relay(state, int(s), heads, q) for s in senders]
        assert proto.choose_relays(state, senders, heads, q).tolist() == want


class TestMixinEdges:
    def test_sender_that_is_a_head_picks_itself(self):
        """Distance zero beats every other head, matching the scalar
        rule — the engine excludes heads from the member set, but the
        contract must not blow up if one slips through."""
        state = fresh(seed=1)
        proto = _NearestProtocol()
        heads = np.asarray([4, 8], dtype=np.intp)
        senders = np.asarray([4, 8], dtype=np.intp)
        out = proto.choose_relays(state, senders, heads, np.zeros(2))
        assert out.tolist() == [4, 8]

    def test_single_head_overlay(self):
        state = fresh(seed=2)
        proto = _NearestProtocol()
        heads = np.asarray([6], dtype=np.intp)
        senders = np.asarray([0, 1, 2], dtype=np.intp)
        out = proto.choose_relays(state, senders, heads, np.zeros(1))
        assert (out == 6).all()

    def test_tie_resolution_matches_scalar(self):
        """The mixin's block argmin and the scalar distances_from argmin
        share the sqrt pipeline, so equidistant heads resolve alike."""
        state = fresh(seed=3)
        proto = _NearestProtocol()
        heads = np.asarray(
            sorted(int(i) for i in range(4)), dtype=np.intp
        )
        senders = np.arange(state.n, dtype=np.intp)
        q = np.zeros(heads.size)
        want = [proto.choose_relay(state, int(s), heads, q) for s in senders]
        assert proto.choose_relays(state, senders, heads, q).tolist() == want


@pytest.mark.parametrize("name", CONTRACT_PROTOCOLS)
class TestRealProtocolEdges:
    def batched_vs_scalar(self, name, mutate=None):
        """Twin runs from identical seeds: one answers batched, one
        walks the scalar method — results must agree elementwise."""
        outs = []
        for mode in ("batched", "scalar"):
            state = fresh(seed=5)
            proto = PROTOCOLS[name]()
            heads = elected(state, proto)
            if heads.size == 0:
                pytest.skip(f"{name} elected no heads on this cube")
            if mutate is not None:
                mutate(state, heads)
            senders = np.setdiff1d(
                np.flatnonzero(state.ledger.alive), heads
            )[:8]
            q = np.zeros(heads.size)
            if mode == "batched":
                outs.append(proto.choose_relays(state, senders, heads, q))
            else:
                outs.append(
                    np.asarray(
                        [
                            proto.choose_relay(state, int(s), heads, q)
                            for s in senders
                        ],
                        dtype=np.intp,
                    )
                )
            targets = outs[-1]
            valid = np.isin(targets, heads) | (targets == state.bs_index)
            assert valid.all(), f"{name} returned a non-head, non-BS relay"
        assert np.array_equal(outs[0], outs[1]), name

    def test_batched_matches_scalar(self, name):
        self.batched_vs_scalar(name)

    def test_all_heads_dead(self, name):
        """The overlay dies after election (e.g. a mid-round kill wave):
        the relay answer may point at a dead head — the channel charges
        the attempt and drops the frame — but batched and scalar must
        still agree and stay inside heads + BS."""

        def kill_overlay(state, heads):
            state.ledger.force_kill([int(h) for h in heads])

        self.batched_vs_scalar(name, mutate=kill_overlay)
