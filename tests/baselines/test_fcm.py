"""Tests for fuzzy C-means and the FCM hierarchical baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fcm import FCMProtocol, fuzzy_c_means
from repro.simulation.engine import SimulationEngine
from repro.simulation.state import NetworkState
from tests.conftest import make_config


class TestFuzzyCMeans:
    def test_membership_rows_stochastic(self):
        rng = np.random.default_rng(0)
        pts = rng.random((30, 3)) * 100
        result = fuzzy_c_means(pts, 4, rng=1)
        np.testing.assert_allclose(result.membership.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(result.membership >= 0.0)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_membership_stochastic_property(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((20, 3)) * 50
        result = fuzzy_c_means(pts, 3, rng=seed, max_iter=30)
        np.testing.assert_allclose(result.membership.sum(axis=1), 1.0, atol=1e-8)

    def test_separated_blobs_hard_labels(self):
        rng = np.random.default_rng(2)
        pts = np.concatenate([
            rng.normal((0, 0, 0), 1.0, size=(15, 3)),
            rng.normal((80, 80, 80), 1.0, size=(15, 3)),
        ])
        result = fuzzy_c_means(pts, 2, rng=3)
        labels = result.hard_labels()
        assert len(set(labels[:15].tolist())) == 1
        assert len(set(labels[15:].tolist())) == 1
        assert labels[0] != labels[-1]

    def test_near_crisp_membership_for_separated_data(self):
        rng = np.random.default_rng(4)
        pts = np.concatenate([
            rng.normal((0, 0, 0), 0.5, size=(10, 3)),
            rng.normal((100, 0, 0), 0.5, size=(10, 3)),
        ])
        result = fuzzy_c_means(pts, 2, rng=5)
        assert result.membership.max(axis=1).min() > 0.95

    def test_converges(self):
        rng = np.random.default_rng(6)
        pts = rng.random((40, 3)) * 10
        result = fuzzy_c_means(pts, 3, rng=7)
        assert result.converged
        assert result.iterations < 200

    def test_fuzzifier_softens_membership(self):
        rng = np.random.default_rng(8)
        pts = rng.random((30, 3)) * 20
        crisp = fuzzy_c_means(pts, 3, m=1.5, rng=9)
        soft = fuzzy_c_means(pts, 3, m=4.0, rng=9)
        assert soft.membership.max(axis=1).mean() < crisp.membership.max(axis=1).mean()

    def test_validation(self):
        pts = np.zeros((5, 3))
        with pytest.raises(ValueError):
            fuzzy_c_means(pts, 0)
        with pytest.raises(ValueError):
            fuzzy_c_means(pts, 2, m=1.0)
        with pytest.raises(ValueError):
            fuzzy_c_means(np.zeros((0, 3)), 1)


class TestFCMProtocol:
    def make_state(self):
        return NetworkState(make_config(n_nodes=30, n_clusters=3, seed=2))

    def test_selects_k_heads(self):
        state = self.make_state()
        proto = FCMProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        assert 1 <= heads.size <= 3

    def test_heads_are_energy_aware(self):
        """Draining a node to near-death must evict it from headship."""
        state = self.make_state()
        proto = FCMProtocol()
        proto.prepare(state)
        heads0 = proto.select_cluster_heads(state)
        state.ledger.discharge(heads0, 0.19, "tx")  # nearly drain all heads
        heads1 = proto.select_cluster_heads(state)
        assert not np.intersect1d(heads0, heads1).size

    def test_member_joins_nearest_head(self):
        state = self.make_state()
        proto = FCMProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        node = int(np.setdiff1d(np.arange(state.n), heads)[0])
        relay = proto.choose_relay(state, node, heads, np.zeros(heads.size))
        d = state.distances_from(node, heads)
        assert relay == int(heads[d.argmin()])

    def test_uplink_path_descends_to_level_zero(self):
        state = self.make_state()
        proto = FCMProtocol(n_levels=3)
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        levels = proto._levels(state, heads)
        for h, lvl in zip(heads, levels):
            path = proto.uplink_path(state, int(h), heads)
            if lvl == 0:
                assert path == []
            else:
                # Path levels strictly decrease.
                path_levels = [levels[list(heads).index(p)] for p in path]
                assert all(
                    a > b for a, b in zip([lvl, *path_levels], path_levels)
                )

    def test_uplink_path_no_cycles(self):
        state = self.make_state()
        proto = FCMProtocol(n_levels=4)
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        for h in heads:
            path = proto.uplink_path(state, int(h), heads)
            assert len(path) == len(set(path))
            assert int(h) not in path

    def test_single_head_path_empty(self):
        state = self.make_state()
        proto = FCMProtocol()
        proto.prepare(state)
        assert proto.uplink_path(state, 0, np.array([0])) == []

    def test_full_simulation_runs(self):
        result = SimulationEngine(make_config(seed=6), FCMProtocol()).run()
        assert 0.0 <= result.delivery_rate <= 1.0
        assert result.packets.generated > 0

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError):
            FCMProtocol(n_levels=0)
