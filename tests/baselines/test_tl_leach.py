"""Tests for the TL-LEACH two-level baseline."""

import numpy as np
import pytest

from repro.baselines import TLLEACHProtocol
from repro.simulation.engine import run_simulation
from repro.simulation.state import NetworkState
from tests.conftest import make_config


def make_state():
    return NetworkState(make_config(n_nodes=50, n_clusters=6, seed=4))


class TestElection:
    def test_selects_both_levels(self):
        state = make_state()
        proto = TLLEACHProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        assert heads.size >= 2
        assert proto._primaries.size >= 1
        assert np.isin(proto._primaries, heads).all()

    def test_primary_fraction_validation(self):
        with pytest.raises(ValueError):
            TLLEACHProtocol(primary_fraction=0.0)
        with pytest.raises(ValueError):
            TLLEACHProtocol(primary_fraction=1.0)

    def test_levels_are_disjoint_from_rest(self):
        state = make_state()
        proto = TLLEACHProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        secondaries = np.setdiff1d(heads, proto._primaries)
        assert not np.intersect1d(secondaries, proto._primaries).size


class TestUplinkPath:
    def test_primary_goes_direct(self):
        state = make_state()
        proto = TLLEACHProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        primary = int(proto._primaries[0])
        assert proto.uplink_path(state, primary, heads) == []

    def test_secondary_relays_through_nearest_primary(self):
        state = make_state()
        proto = TLLEACHProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        secondaries = np.setdiff1d(heads, proto._primaries)
        if secondaries.size == 0:
            pytest.skip("election produced no secondary this seed")
        sec = int(secondaries[0])
        path = proto.uplink_path(state, sec, heads)
        assert len(path) == 1
        d = state.distances_from(sec, proto._primaries)
        assert path[0] == int(proto._primaries[d.argmin()])

    def test_dead_primaries_skipped(self):
        state = make_state()
        proto = TLLEACHProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        secondaries = np.setdiff1d(heads, proto._primaries)
        if secondaries.size == 0:
            pytest.skip("no secondary this seed")
        state.ledger.discharge(proto._primaries, 10.0, "tx")
        assert proto.uplink_path(state, int(secondaries[0]), heads) == []


class TestFullRun:
    def test_simulation_completes(self):
        result = run_simulation(make_config(seed=5), TLLEACHProtocol())
        result.validate()
        assert 0.0 <= result.delivery_rate <= 1.0

    def test_some_deliveries_take_extra_hop(self):
        """Two-level relaying shows up as mean hops above the flat
        member->head->BS value of 2."""
        result = run_simulation(
            make_config(seed=6, n_nodes=60, n_clusters=8, mean_interarrival=8.0),
            TLLEACHProtocol(),
        )
        if result.packets.delivered:
            assert result.packets.mean_hops > 1.5
