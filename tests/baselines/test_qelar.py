"""Tests for the QELAR-style hop-by-hop Q-routing baseline."""

import numpy as np
import pytest

from repro.baselines import QELARProtocol
from repro.simulation.engine import run_simulation
from repro.simulation.state import NetworkState
from tests.conftest import make_config


def big_state(seed=2):
    """A network wide enough that multi-hop is actually needed."""
    return NetworkState(
        make_config(n_nodes=60, side=300.0, seed=seed, n_clusters=4)
    )


class TestNeighbourhoods:
    def test_no_heads_ever(self):
        state = big_state()
        proto = QELARProtocol()
        proto.prepare(state)
        assert proto.select_cluster_heads(state).size == 0

    def test_candidates_make_progress(self):
        state = big_state()
        proto = QELARProtocol()
        proto.prepare(state)
        d_bs = state.topology.d_to_bs
        for i in range(state.n):
            for c in proto._candidates[i]:
                assert d_bs[c] < d_bs[i]

    def test_candidates_within_range(self):
        state = big_state()
        proto = QELARProtocol()
        proto.prepare(state)
        full = state.topology.full_matrix()
        for i in range(state.n):
            cand = proto._candidates[i]
            if cand.size:
                assert np.all(full[i, cand] <= proto._radio_range + 1e-9)

    def test_candidate_cap(self):
        state = big_state()
        proto = QELARProtocol(max_candidates=3)
        proto.prepare(state)
        assert max(c.size for c in proto._candidates) <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            QELARProtocol(range_factor=0.0)
        with pytest.raises(ValueError):
            QELARProtocol(max_candidates=0)


class TestRelayChoice:
    def test_near_sink_goes_direct(self):
        state = big_state()
        proto = QELARProtocol()
        proto.prepare(state)
        nearest = int(np.argmin(state.topology.d_to_bs))
        relay = proto.choose_relay(state, nearest, np.empty(0, dtype=int),
                                   np.empty(0))
        assert relay == state.bs_index

    def test_far_node_picks_progress_neighbour(self):
        state = big_state()
        proto = QELARProtocol()
        proto.prepare(state)
        far = int(np.argmax(state.topology.d_to_bs))
        if proto._candidates[far].size == 0:
            pytest.skip("void region for this seed")
        relay = proto.choose_relay(state, far, np.empty(0, dtype=int),
                                   np.empty(0))
        assert relay != state.bs_index
        assert state.topology.d_to_bs[relay] < state.topology.d_to_bs[far]

    def test_relay_choice_updates_v(self):
        state = big_state()
        proto = QELARProtocol()
        proto.prepare(state)
        far = int(np.argmax(state.topology.d_to_bs))
        if proto._candidates[far].size == 0:
            pytest.skip("void region for this seed")
        proto.choose_relay(state, far, np.empty(0, dtype=int), np.empty(0))
        assert proto.v.update_count == 1

    def test_dead_candidates_skipped(self):
        state = big_state()
        proto = QELARProtocol()
        proto.prepare(state)
        far = int(np.argmax(state.topology.d_to_bs))
        state.ledger.discharge(proto._candidates[far], 10.0, "tx")
        relay = proto.choose_relay(state, far, np.empty(0, dtype=int),
                                   np.empty(0))
        assert relay == state.bs_index  # void fallback


class TestFullRun:
    def test_simulation_completes_with_multihop(self):
        config = make_config(n_nodes=60, side=300.0, seed=4,
                             mean_interarrival=16.0)
        result = run_simulation(config, QELARProtocol())
        result.validate()
        # Some packets must have taken more than one hop.
        assert result.packets.mean_hops > 1.0

    def test_ttl_bounds_hops(self):
        config = make_config(n_nodes=60, side=300.0, seed=5).replace(max_hops=3)
        result = run_simulation(config, QELARProtocol())
        result.validate()
        if result.packets.latencies:
            # delivered packets obeyed the TTL
            assert result.packets.total_hops <= 3 * max(
                result.packets.delivered, 1
            )

    def test_mobility_triggers_neighbourhood_rebuild(self):
        from repro.network.mobility import MobilityConfig

        config = make_config(n_nodes=40, side=250.0, seed=6).replace(
            mobility=MobilityConfig(speed=20.0)
        )
        result = run_simulation(config, QELARProtocol())
        result.validate()

    def test_sink_contention_limits_flat_routing(self):
        """The scalability story behind Eq. (19)'s penalty: a flat
        protocol funnels everything into the BS's unscheduled budget
        and saturates where clustering does not."""
        from repro.core import QLECProtocol

        config = make_config(n_nodes=40, seed=7, mean_interarrival=2.0)
        flat = run_simulation(config, QELARProtocol())
        clustered = run_simulation(config, QLECProtocol())
        assert clustered.delivery_rate > flat.delivery_rate
