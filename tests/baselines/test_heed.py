"""Tests for the HEED baseline."""

import numpy as np
import pytest

from repro.baselines import HEEDProtocol
from repro.core.theory import cluster_radius
from repro.simulation.engine import run_simulation
from repro.simulation.state import NetworkState
from tests.conftest import make_config


def make_state(seed=3, n=40, k=4):
    return NetworkState(make_config(n_nodes=n, n_clusters=k, seed=seed))


class TestElection:
    def test_produces_spaced_heads(self):
        state = make_state()
        proto = HEEDProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        assert heads.size >= 1
        r = cluster_radius(4, state.config.deployment.side)
        full = state.topology.full_matrix()
        for i, a in enumerate(heads):
            for b in heads[i + 1:]:
                assert full[a, b] > r

    def test_only_alive_heads(self):
        state = make_state()
        state.ledger.discharge(np.arange(20), 10.0, "tx")
        proto = HEEDProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        assert np.all(heads >= 20)

    def test_energy_biases_election(self):
        """High-residual nodes head far more often than drained ones."""
        state = make_state(n=40)
        proto = HEEDProtocol()
        proto.prepare(state)
        poor = np.arange(0, 20)
        state.ledger.discharge(poor, 0.15, "tx")  # 25% residual left
        rich_count = poor_count = 0
        for _ in range(30):
            heads = proto.select_cluster_heads(state)
            rich_count += int((heads >= 20).sum())
            poor_count += int((heads < 20).sum())
        # HEED's doubling race lets uncovered low-energy nodes finalise
        # as heads eventually, so the bias is moderate (not the stark
        # DEEC-style proportionality) — but it must exist.
        assert rich_count > 1.3 * poor_count

    def test_amrp_finite(self):
        state = make_state()
        proto = HEEDProtocol()
        proto.prepare(state)
        amrp = proto._amrp(state)
        assert np.all(np.isfinite(amrp))
        assert np.all(amrp > 0)

    def test_fallback_single_survivor(self):
        state = make_state(n=5, k=2)
        state.ledger.discharge(np.arange(4), 10.0, "tx")
        proto = HEEDProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        assert list(heads) == [4]

    def test_all_dead_returns_empty(self):
        state = make_state(n=5, k=2)
        state.ledger.discharge(np.arange(5), 10.0, "tx")
        proto = HEEDProtocol()
        proto.prepare(state)
        assert proto.select_cluster_heads(state).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HEEDProtocol(c_prob=0.0)
        with pytest.raises(ValueError):
            HEEDProtocol(p_min=2.0)
        with pytest.raises(ValueError):
            HEEDProtocol(max_iterations=0)


class TestFullRun:
    def test_simulation_completes(self):
        result = run_simulation(make_config(seed=7), HEEDProtocol())
        result.validate()
        assert 0.0 <= result.delivery_rate <= 1.0

    def test_registered_in_sweep(self):
        from repro.analysis.sweep import PROTOCOLS, run_cell

        assert "heed" in PROTOCOLS
        row = run_cell("heed", 8.0, seed=0, rounds=2)
        assert row["protocol"] == "heed"
