"""Tests for the LEACH, classic DEEC, and direct-transmission baselines."""

import numpy as np
import pytest

from repro.baselines import DEECProtocol, DirectProtocol, LEACHProtocol
from repro.simulation.engine import SimulationEngine
from repro.simulation.state import NetworkState
from tests.conftest import make_config


class TestLEACH:
    def make_state(self):
        return NetworkState(make_config(n_nodes=40, n_clusters=4, seed=3))

    def test_elects_some_heads(self):
        state = self.make_state()
        proto = LEACHProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        assert heads.size >= 1
        assert state.ledger.alive[heads].all()

    def test_rotation_excludes_recent_heads(self):
        state = self.make_state()
        proto = LEACHProtocol()
        proto.prepare(state)
        state.last_ch_round[:] = 0
        state.round_index = 1
        heads = proto.select_cluster_heads(state)
        # Everyone served last round -> only the promotion fallback fires.
        assert heads.size == 1

    def test_expected_head_count_near_k(self):
        """With proper rotation bookkeeping (the shrinking candidate
        set balances the growing threshold), the long-run mean election
        size stays near p*N = k."""
        state = self.make_state()
        proto = LEACHProtocol()
        proto.prepare(state)
        counts = []
        for r in range(200):
            state.round_index = r
            heads = proto.select_cluster_heads(state)
            state.mark_cluster_heads(heads)
            counts.append(heads.size)
        assert 2.0 < float(np.mean(counts)) < 8.0

    def test_member_joins_nearest(self):
        state = self.make_state()
        proto = LEACHProtocol()
        proto.prepare(state)
        heads = np.array([0, 1, 2])
        node = 10
        relay = proto.choose_relay(state, node, heads, np.zeros(3))
        d = state.distances_from(node, heads)
        assert relay == int(heads[d.argmin()])

    def test_no_energy_awareness(self):
        """LEACH may elect a nearly-drained node — its defining flaw."""
        state = self.make_state()
        proto = LEACHProtocol()
        proto.prepare(state)
        # Drain everyone except node 0 close to (but above) death.
        state.ledger.discharge(np.arange(1, state.n), 0.1, "tx")
        elected = set()
        for r in range(60):
            state.round_index = r
            state.last_ch_round[:] = -np.inf
            elected.update(proto.select_cluster_heads(state).tolist())
        drained = set(range(1, state.n))
        assert elected & drained  # drained nodes do get elected

    def test_full_run(self):
        result = SimulationEngine(make_config(seed=8), LEACHProtocol()).run()
        assert 0.0 <= result.delivery_rate <= 1.0


class TestDEEC:
    def test_energy_biases_election(self):
        """Nodes with more residual energy head more often (Eq. 1)."""
        state = NetworkState(make_config(n_nodes=40, n_clusters=4, seed=5))
        proto = DEECProtocol()
        proto.prepare(state)
        rich = np.arange(0, 20)
        poor = np.arange(20, 40)
        state.ledger.discharge(poor, 0.1, "tx")  # poor half at 50% energy
        rich_count = poor_count = 0
        for r in range(120):
            state.round_index = r % 10
            state.last_ch_round[:] = -np.inf
            heads = proto.select_cluster_heads(state)
            rich_count += np.isin(heads, rich).sum()
            poor_count += np.isin(heads, poor).sum()
        assert rich_count > poor_count

    def test_uses_linear_estimate(self):
        state = NetworkState(make_config(seed=5))
        proto = DEECProtocol()
        proto.prepare(state)
        assert proto.selector.config.energy_estimate == "linear"
        assert not proto.selector.config.use_energy_threshold

    def test_full_run(self):
        result = SimulationEngine(make_config(seed=9), DEECProtocol()).run()
        assert 0.0 <= result.delivery_rate <= 1.0


class TestDirect:
    def test_no_heads(self):
        state = NetworkState(make_config(seed=1))
        proto = DirectProtocol()
        proto.prepare(state)
        assert proto.select_cluster_heads(state).size == 0

    def test_relay_is_always_bs(self):
        state = NetworkState(make_config(seed=1))
        proto = DirectProtocol()
        assert proto.choose_relay(state, 0, np.array([]), np.array([])) == state.bs_index

    def test_full_run_delivers_one_hop(self):
        result = SimulationEngine(
            make_config(seed=10, mean_interarrival=16.0), DirectProtocol()
        ).run()
        assert result.packets.mean_hops == pytest.approx(1.0)

    def test_congestion_collapses_direct(self):
        """The BS ingress budget throttles unscheduled direct traffic."""
        idle = SimulationEngine(
            make_config(seed=11, mean_interarrival=32.0), DirectProtocol()
        ).run()
        congested = SimulationEngine(
            make_config(seed=11, mean_interarrival=1.0), DirectProtocol()
        ).run()
        assert congested.delivery_rate < idle.delivery_rate
