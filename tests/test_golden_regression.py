"""Golden regression pins.

These tests freeze the exact outcome of reference runs under fixed
seeds.  They are *intentionally brittle*: any change to RNG stream
layout, energy pricing, election logic, or the data plane will trip
them.  When a change is deliberate, update the constants here and
describe the behavioural shift in the commit that does so.
"""

import numpy as np
import pytest

from repro.config import paper_config
from repro.core import QLECProtocol
from repro.core.theory import cluster_radius, optimal_cluster_count
from repro.simulation import run_simulation


class TestGoldenQLECReferenceRun:
    """The seed-0 Table-2 QLEC run, pinned field by field."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_simulation(paper_config(seed=0), QLECProtocol())

    # Constants regenerated when the slot kernel moved to the canonical
    # sorted-sender draw order (the old engine shuffled senders, so its
    # channel stream consumed different uniforms per slot).

    def test_packet_counts(self, result):
        assert result.packets.generated == 4616
        assert result.packets.delivered == 4215

    def test_delivery_rate(self, result):
        assert result.delivery_rate == pytest.approx(0.91313, abs=1e-4)

    def test_total_energy(self, result):
        assert result.total_energy == pytest.approx(6.050271, abs=1e-5)

    def test_lifespan_censored(self, result):
        assert result.lifespan == 20
        assert result.lifespan_censored

    def test_balance_index(self, result):
        assert result.energy_balance_index() == pytest.approx(0.8362, abs=1e-3)

    def test_mean_latency(self, result):
        assert result.mean_latency == pytest.approx(2.408, abs=1e-2)


class TestGoldenAnalytics:
    """Closed-form constants that must never drift."""

    def test_kopt_table2(self):
        # d_toBS for the centred BS in the 200-cube: 0.4803 * 200.
        k = optimal_cluster_count(100, 200.0, 0.480296 * 200.0)
        assert k == pytest.approx(11.14749, abs=2e-3)

    def test_cluster_radius_k5(self):
        assert cluster_radius(5, 200.0) == pytest.approx(72.55663, abs=1e-3)

    def test_d0(self):
        from repro.config import RadioConfig

        assert RadioConfig().d0 == pytest.approx(87.7058, abs=1e-3)

    def test_deployment_is_stable(self):
        """The seed-0 deployment's first node position, pinned."""
        from repro.simulation.state import NetworkState

        state = NetworkState(paper_config(seed=0))
        first = state.nodes.positions[0]
        # Any change to RNG stream spawning reshuffles this.
        assert np.all((first >= 0) & (first <= 200.0))
        fingerprint = float(state.nodes.positions.sum())
        state2 = NetworkState(paper_config(seed=0))
        assert float(state2.nodes.positions.sum()) == pytest.approx(fingerprint)
