"""Tests for the command-line interface and the report generator."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig3_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.command == "fig3"
        assert args.lambdas == [2.0, 4.0, 8.0, 16.0]

    def test_fig4_options(self):
        args = build_parser().parse_args(
            ["fig4", "--nodes", "100", "--clusters", "9", "--compare"]
        )
        assert args.nodes == 100
        assert args.compare

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    @pytest.mark.parametrize(
        "command", ["quickstart", "fig3", "fig4", "sweep", "scenario"]
    )
    def test_backend_flag_accepted(self, command):
        argv = [command, "table2"] if command == "scenario" else [command]
        args = build_parser().parse_args(argv + ["--backend", "numpy"])
        assert args.backend == "numpy"

    def test_backend_defaults_to_auto(self):
        assert build_parser().parse_args(["quickstart"]).backend == "auto"

    def test_backend_rejects_unknown_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quickstart", "--backend", "tpu"])


class TestCommands:
    def test_quickstart_prints_table(self, capsys):
        assert main(["quickstart", "--seed", "1", "--lam", "16"]) == 0
        out = capsys.readouterr().out
        for name in ("qlec", "fcm", "kmeans", "direct"):
            assert name in out

    def test_kopt_command(self, capsys):
        assert main(["kopt"]) == 0
        assert "Theorem 1" in capsys.readouterr().out

    def test_fig4_small_command(self, capsys):
        rc = main(
            ["fig4", "--nodes", "80", "--clusters", "8", "--rounds", "2"]
        )
        assert rc == 0
        assert "Fig. 4" in capsys.readouterr().out


class TestReport:
    def test_quick_report(self, tmp_path, monkeypatch):
        from repro.analysis.report import ReportConfig, generate_report

        text = generate_report(
            ReportConfig(
                seeds=(0,),
                lambdas=(8.0,),
                quick=True,
                serial=True,
            )
        )
        assert text.startswith("# QLEC reproduction report")
        assert "Fig. 3" in text
        assert "Theorem 1" in text
        assert "Complexity" in text

    @pytest.mark.slow
    def test_report_command_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "REPORT.md"
        # quick+serial keeps this test to a few seconds.
        import repro.analysis.report as report_mod

        original = report_mod.ReportConfig
        rc = main(["report", "--out", str(out_file), "--quick", "--serial"])
        assert rc == 0
        assert out_file.exists()
        assert "Fig. 3" in out_file.read_text()
        assert original is report_mod.ReportConfig


class TestNewCommands:
    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "underwater" in out

    def test_scenario_run_with_layout(self, capsys):
        assert main(
            ["scenario", "table2", "--protocol", "direct", "--layout"]
        ) == 0
        out = capsys.readouterr().out
        assert "S" in out  # the BS marker in the layout
        assert "direct" in out

    def test_scenario_unknown_raises(self):
        with pytest.raises(KeyError):
            main(["scenario", "atlantis"])

    def test_convergence_command(self, capsys):
        assert main(["convergence"]) == 0
        assert "X / N" in capsys.readouterr().out

    def test_lifespan_command_small(self, capsys):
        assert main(
            ["lifespan", "--rounds", "6", "--seeds", "0", "--energy", "0.03"]
        ) == 0
        assert "FND" in capsys.readouterr().out


class TestShardCommands:
    GRID = [
        "--protocols", "direct", "--lambdas", "4", "8", "--seeds", "0", "1",
        "--rounds", "2", "--serial",
    ]

    def _run_shards(self, tmp_path, num_shards):
        paths = []
        for k in range(1, num_shards + 1):
            out = tmp_path / f"s{k}.jsonl"
            assert main(
                ["sweep", *self.GRID, "--shard", f"{k}/{num_shards}",
                 "--out", str(out)]
            ) == 0
            paths.append(str(out))
        return paths

    def test_sweep_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "shard.jsonl"
        assert main(["sweep", *self.GRID, "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "shard 1/1: 4 of 4 cells" in stdout
        assert "executed 4, resumed 0, errors 0" in stdout
        assert out.exists()

    def test_sweep_resume_skips(self, tmp_path, capsys):
        out = tmp_path / "shard.jsonl"
        assert main(["sweep", *self.GRID, "--out", str(out)]) == 0
        assert main(["sweep", *self.GRID, "--out", str(out)]) == 0
        assert "executed 0, resumed 4" in capsys.readouterr().out

    def test_merge_recovers_grid(self, tmp_path, capsys):
        paths = self._run_shards(tmp_path, 2)
        capsys.readouterr()
        assert main(["merge", *reversed(paths), "--strict"]) == 0
        stdout = capsys.readouterr().out
        assert "4 of 4 cells recovered" in stdout
        assert "direct" in stdout

    def test_merge_strict_fails_on_missing(self, tmp_path, capsys):
        paths = self._run_shards(tmp_path, 2)
        assert main(["merge", paths[0], "--strict"]) == 1
        assert "MISSING" in capsys.readouterr().out

    def test_merge_writes_sweep_json(self, tmp_path):
        from repro.analysis import load_sweep

        paths = self._run_shards(tmp_path, 2)
        out = tmp_path / "merged.json"
        assert main(["merge", *paths, "--out", str(out)]) == 0
        assert len(load_sweep(out).rows) == 4

    def test_fig3_from_artifacts(self, tmp_path, capsys):
        grid = [
            "--protocols", "direct", "kmeans", "--lambdas", "4", "8",
            "--seeds", "0", "--rounds", "2", "--serial",
        ]
        out = tmp_path / "all.jsonl"
        assert main(["sweep", *grid, "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["fig3", "--from-artifacts", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "Fig. 3(a)" in stdout and "kmeans" in stdout

    def test_sweep_bad_shard_selector(self):
        with pytest.raises(ValueError):
            main(["sweep", *self.GRID, "--shard", "3/2"])


class TestVersionCommand:
    def test_version_subcommand(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert "numpy" in out and "numba" in out

    def test_version_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_version_reports_package_version(self, capsys):
        from repro import __version__

        main(["version"])
        assert __version__ in capsys.readouterr().out


class TestStatusCommand:
    GRID = [
        "--protocols", "direct", "--lambdas", "4", "8", "--seeds", "0", "1",
        "--rounds", "2", "--serial",
    ]

    def test_status_matches_merged_artifact(self, tmp_path, capsys):
        """Acceptance: on a 2-shard sweep, `repro status` reports cells
        done/failed matching the merged artifact exactly."""
        from repro.parallel import merge_artifacts

        paths = []
        for k in (1, 2):
            out = tmp_path / f"s{k}.jsonl"
            assert main(
                ["sweep", *self.GRID, "--shard", f"{k}/2", "--out", str(out)]
            ) == 0
            paths.append(out)
        capsys.readouterr()
        assert main(["status", str(tmp_path)]) == 0
        stdout = capsys.readouterr().out
        merged = merge_artifacts(paths)
        done = len(merged.sweep.rows)
        failed = len(merged.errors)
        assert f"fleet: {done}/{done + failed} cells done, " in stdout
        assert f"{failed} failed (complete)" in stdout
        assert "1/2" in stdout and "2/2" in stdout

    def test_status_accepts_artifact_paths(self, tmp_path, capsys):
        out = tmp_path / "s.jsonl"
        assert main(
            ["sweep", *self.GRID, "--shard", "1/1", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert main(["status", str(out)]) == 0
        assert "complete" in capsys.readouterr().out

    def test_status_no_sidecars_exits_2(self, tmp_path, capsys):
        assert main(["status", str(tmp_path)]) == 2
        assert "no status sidecars" in capsys.readouterr().err


class TestScenarioTrace:
    def test_trace_writes_jsonl_and_chrome(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "run.trace.jsonl"
        assert main(
            ["scenario", "table2", "--protocol", "direct", "--faults",
             "ch-kill", "--trace", str(trace_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        first = json.loads(trace_path.read_text().splitlines()[0])
        assert first["kind"] == "manifest"
        chrome_path = tmp_path / "run.trace.chrome.json"
        doc = json.loads(chrome_path.read_text())
        assert doc["traceEvents"]

    def test_trace_contains_fault_instants(self, tmp_path):
        from repro.telemetry import read_trace_jsonl

        trace_path = tmp_path / "run.trace.jsonl"
        assert main(
            ["scenario", "table2", "--protocol", "direct", "--faults",
             "ch-kill", "--trace", str(trace_path)]
        ) == 0
        events = read_trace_jsonl(trace_path)["events"]
        assert any(ev["cat"] == "fault" for ev in events)


class TestSchedulerCli:
    GRID = [
        "--protocols", "direct", "--lambdas", "4", "8", "--seeds", "0", "1",
        "--rounds", "2",
    ]

    def test_scheduler_runs_whole_grid(self, tmp_path, capsys):
        out = tmp_path / "sched.jsonl"
        assert main(
            ["sweep", *self.GRID, "--scheduler", "--workers", "2",
             "--out", str(out)]
        ) == 0
        stdout = capsys.readouterr().out
        assert "scheduled: 4 cells" in stdout
        assert "executed 4, resumed 0, errors 0" in stdout
        assert out.exists()

    def test_scheduler_resume_skips(self, tmp_path, capsys):
        out = tmp_path / "sched.jsonl"
        args = ["sweep", *self.GRID, "--scheduler", "--out", str(out)]
        assert main(args) == 0
        before = out.read_bytes()
        assert main(args) == 0
        assert "executed 0, resumed 4" in capsys.readouterr().out
        assert out.read_bytes() == before

    def test_scheduler_rejects_shard_selector(self, capsys):
        assert main(
            ["sweep", *self.GRID, "--scheduler", "--shard", "1/2"]
        ) == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_compressed_scheduled_artifact_merges(self, tmp_path, capsys):
        out = tmp_path / "sched.jsonl.gz"
        assert main(
            ["sweep", *self.GRID, "--scheduler", "--compress", "gz",
             "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert main(["merge", str(out), "--strict"]) == 0
        assert "4 of 4 cells recovered" in capsys.readouterr().out

    def test_explicit_zst_without_binding_exits_2(self, tmp_path, capsys):
        from repro.telemetry.jsonl import zstd_module

        if zstd_module() is not None:
            pytest.skip("zstd binding installed")
        rc = main(
            ["sweep", *self.GRID, "--compress", "zst",
             "--out", str(tmp_path / "s.jsonl.zst")]
        )
        assert rc == 2
        assert "zstandard" in capsys.readouterr().err


class TestServeCli:
    def _write_job(self, jobs_dir, name, **options):
        import json

        from repro.parallel.sharding import SweepSpec

        spec = SweepSpec(
            protocols=("direct",), lambdas=(4.0, 8.0), seeds=(0, 1),
            rounds=2,
        )
        jobs_dir.mkdir(parents=True, exist_ok=True)
        (jobs_dir / f"{name}.job.json").write_text(
            json.dumps({"spec": spec.to_payload(), **options})
        )

    def test_serve_once_runs_catalog(self, tmp_path, capsys):
        self._write_job(tmp_path, "tiny", compression="gz")
        assert main(["serve", str(tmp_path), "--once", "--workers", "1"]) == 0
        stdout = capsys.readouterr().out
        assert "serve: 1 job(s)" in stdout
        assert "executed 4" in stdout
        artifact = tmp_path / "artifacts" / "tiny.jsonl.gz"
        assert artifact.exists()
        # The serve directory is a normal fleet for the other commands.
        capsys.readouterr()
        assert main(["merge", str(artifact), "--strict"]) == 0
        assert main(["status", str(tmp_path)]) == 0

    def test_serve_cycles_resume_idempotently(self, tmp_path, capsys):
        self._write_job(tmp_path, "tiny")
        assert main(
            ["serve", str(tmp_path), "--cycles", "2", "--idle", "0",
             "--workers", "1"]
        ) == 0
        # The report covers the LAST cycle: a pure resume.
        assert "executed 0, resumed 4" in capsys.readouterr().out


class TestStatusUnderScheduler:
    GRID = [
        "--protocols", "direct", "--lambdas", "4", "8", "--seeds", "0", "1",
        "--rounds", "2",
    ]

    def test_rollup_mixes_compressed_shards_and_scheduler(
        self, tmp_path, capsys
    ):
        # A fleet of two gz static shards plus one scheduled run: the
        # rollup must count every sidecar and label the scheduler row.
        for k in (1, 2):
            assert main(
                ["sweep", *self.GRID, "--serial", "--shard", f"{k}/2",
                 "--compress", "gz",
                 "--out", str(tmp_path / f"s{k}.jsonl.gz")]
            ) == 0
        assert main(
            ["sweep", *self.GRID, "--scheduler",
             "--out", str(tmp_path / "sched.jsonl")]
        ) == 0
        capsys.readouterr()
        assert main(["status", str(tmp_path)]) == 0
        stdout = capsys.readouterr().out
        assert "sched" in stdout
        assert "1/2" in stdout and "2/2" in stdout
        assert "steals" in stdout and "reclaimed" in stdout
        assert "fleet: 8/8 cells done, 0 failed (complete)" in stdout


class TestCheckpointCommands:
    def test_checkpoint_flags_parse(self):
        args = build_parser().parse_args(
            ["scenario", "table2", "--checkpoint-every", "5",
             "--checkpoint-dir", "ck", "--keep-last", "2"]
        )
        assert args.checkpoint_every == 5
        assert args.checkpoint_dir == "ck"
        assert args.keep_last == 2
        args = build_parser().parse_args(["sweep"])
        assert args.checkpoint_every is None  # default off

    def test_scenario_checkpoints_then_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "ck"
        assert main(
            ["scenario", "table2", "--protocol", "direct", "--seed", "1",
             "--checkpoint-every", "2", "--checkpoint-dir", str(ckpt)]
        ) == 0
        capsys.readouterr()
        from repro.checkpoint import snapshot_paths

        snaps = snapshot_paths(ckpt, "direct-table2-s1")
        assert snaps
        # Finish the run again from a mid-run snapshot via the CLI.
        assert main(["resume", str(snaps[0])]) == 0
        out = capsys.readouterr().out
        assert "resuming from round" in out
        assert "resumed run" in out

    def test_resume_refuses_corrupt_snapshot_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad-r00000001.ckpt"
        bad.write_bytes(b'{"kind": "engine-checkpoint"}\njunk')
        assert main(["resume", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_with_checkpointing_matches_plain(self, tmp_path, capsys):
        grid = ["--protocols", "direct", "--lambdas", "4", "--seeds", "0",
                "--rounds", "2", "--serial"]
        assert main(
            ["sweep", *grid, "--out", str(tmp_path / "a.jsonl")]
        ) == 0
        assert main(
            ["sweep", *grid, "--out", str(tmp_path / "b.jsonl"),
             "--checkpoint-every", "1",
             "--checkpoint-dir", str(tmp_path / "ck")]
        ) == 0
        capsys.readouterr()
        from repro.parallel import load_artifact

        rows = lambda p: [
            r["summary"] for r in load_artifact(p).records
            if r.get("kind") == "cell"
        ]
        assert rows(tmp_path / "a.jsonl") == rows(tmp_path / "b.jsonl")
        assert list((tmp_path / "ck").glob("*.ckpt"))
