"""Tests for the finite-MDP machinery and value iteration."""

import numpy as np
import pytest

from repro.rl.mdp import FiniteMDP, greedy_policy, q_from_v, value_iteration


def two_state_chain(gamma=0.9):
    """S0 --a1(r=1)--> S1(absorbing), S0 --a0(r=0)--> S0.

    Analytic optimum: V*(S0) = 1 (take a1 immediately), V*(S1) = 0.
    """
    t = np.zeros((2, 2, 2))
    r = np.zeros((2, 2, 2))
    # action 0: stay put
    t[0, 0, 0] = 1.0
    t[0, 1, 1] = 1.0
    # action 1: S0 -> S1 with reward 1; from S1 self-loop
    t[1, 0, 1] = 1.0
    r[1, 0, 1] = 1.0
    t[1, 1, 1] = 1.0
    terminal = np.array([False, True])
    return FiniteMDP(t, r, gamma, terminal)


class TestFiniteMDP:
    def test_rejects_nonstochastic_rows(self):
        t = np.zeros((1, 2, 2))
        t[0, 0, 0] = 0.5  # row sums to 0.5
        t[0, 1, 1] = 1.0
        with pytest.raises(ValueError):
            FiniteMDP(t, np.zeros_like(t), 0.9)

    def test_rejects_negative_probabilities(self):
        t = np.zeros((1, 1, 1))
        t[0, 0, 0] = 1.0
        bad = t.copy()
        bad[0, 0, 0] = -1.0
        with pytest.raises(ValueError):
            FiniteMDP(bad, np.zeros_like(t), 0.9)

    def test_rejects_shape_mismatch(self):
        t = np.ones((1, 1, 1))
        with pytest.raises(ValueError):
            FiniteMDP(t, np.zeros((1, 2, 2)), 0.9)

    def test_rejects_bad_gamma(self):
        mdp_args = np.ones((1, 1, 1)), np.zeros((1, 1, 1))
        with pytest.raises(ValueError):
            FiniteMDP(*mdp_args, gamma=1.5)

    def test_expected_reward_eq10(self):
        """Eq. (10): R_t = sum_s' P^a_{ss'} R^a_{ss'}."""
        t = np.zeros((1, 1, 2))  # invalid square -> build properly
        t = np.zeros((1, 2, 2))
        t[0, 0, 0] = 0.3
        t[0, 0, 1] = 0.7
        t[0, 1, 1] = 1.0
        r = np.zeros_like(t)
        r[0, 0, 0] = 2.0
        r[0, 0, 1] = -1.0
        mdp = FiniteMDP(t, r, 0.9)
        assert mdp.expected_reward()[0, 0] == pytest.approx(0.3 * 2 - 0.7)

    def test_sample_step_distribution(self):
        mdp = two_state_chain()
        rng = np.random.default_rng(0)
        nexts = {mdp.sample_step(0, 1, rng)[0] for _ in range(20)}
        assert nexts == {1}
        _, reward = mdp.sample_step(0, 1, rng)
        assert reward == 1.0


class TestValueIteration:
    def test_two_state_chain_analytic(self):
        mdp = two_state_chain(gamma=0.9)
        v, iters = value_iteration(mdp)
        np.testing.assert_allclose(v, [1.0, 0.0], atol=1e-8)
        assert iters >= 1

    def test_discounted_self_loop(self):
        """Single state, reward 1 per step: V = 1 / (1 - gamma)."""
        t = np.ones((1, 1, 1))
        r = np.ones((1, 1, 1))
        mdp = FiniteMDP(t, r, 0.5)
        v, _ = value_iteration(mdp)
        assert v[0] == pytest.approx(2.0, abs=1e-8)

    def test_greedy_policy_picks_reward(self):
        mdp = two_state_chain()
        v, _ = value_iteration(mdp)
        policy = greedy_policy(mdp, v)
        assert policy[0] == 1

    def test_q_from_v_bellman_consistency(self):
        """At the fixed point, V = max_a Q (Eq. 14)."""
        mdp = two_state_chain()
        v, _ = value_iteration(mdp)
        q = q_from_v(mdp, v)
        v_from_q = q.max(axis=0)
        v_from_q[mdp.terminal] = 0.0
        np.testing.assert_allclose(v_from_q, v, atol=1e-8)

    def test_q_from_v_shape_check(self):
        mdp = two_state_chain()
        with pytest.raises(ValueError):
            q_from_v(mdp, np.zeros(3))

    def test_tol_validation(self):
        with pytest.raises(ValueError):
            value_iteration(two_state_chain(), tol=0.0)

    def test_random_mdp_fixed_point(self):
        """VI output satisfies the Bellman optimality equation."""
        rng = np.random.default_rng(42)
        a_n, s_n = 3, 6
        t = rng.random((a_n, s_n, s_n))
        t /= t.sum(axis=2, keepdims=True)
        r = rng.normal(size=(a_n, s_n, s_n))
        mdp = FiniteMDP(t, r, 0.8)
        v, _ = value_iteration(mdp, tol=1e-12)
        q = q_from_v(mdp, v)
        np.testing.assert_allclose(q.max(axis=0), v, atol=1e-9)
