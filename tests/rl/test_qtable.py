"""Tests for V/Q table storage and update accounting."""

import numpy as np
import pytest

from repro.rl.qtable import QTable, VTable


class TestVTable:
    def test_initialises_to_zero(self):
        v = VTable(5)
        assert np.all(v.values == 0.0)

    def test_bs_index_is_n(self):
        v = VTable(5)
        assert v.bs_index == 5
        v[5] = 3.0  # BS slot exists
        assert v[5] == 3.0

    def test_update_count_is_the_X_of_lemma3(self):
        v = VTable(4)
        v[0] = 1.0
        v[1] = 2.0
        v[0] = 3.0
        assert v.update_count == 3

    def test_get_many_vectorized(self):
        v = VTable(3)
        v[1] = 5.0
        np.testing.assert_allclose(v.get_many(np.array([0, 1, 3])), [0.0, 5.0, 0.0])

    def test_reset(self):
        v = VTable(3)
        v[0] = 9.0
        v.reset()
        assert np.all(v.values == 0.0)
        assert v.update_count == 0

    def test_values_read_only(self):
        v = VTable(2)
        with pytest.raises(ValueError):
            v.values[0] = 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            VTable(0)

    def test_bs_value_constructor(self):
        v = VTable(2, bs_value=7.0)
        assert v[2] == 7.0


class TestQTable:
    def test_set_get(self):
        q = QTable(3, 2)
        q.set(1, 0, 4.5)
        assert q.get(1, 0) == 4.5
        assert q.update_count == 1

    def test_best_action_deterministic_when_unique(self):
        q = QTable(1, 3)
        q.set(0, 2, 1.0)
        assert q.best_action(0) == 2

    def test_best_action_random_tiebreak(self):
        q = QTable(1, 4)
        rng = np.random.default_rng(0)
        picks = {q.best_action(0, rng) for _ in range(50)}
        assert len(picks) > 1  # ties broken randomly over the 4 zeros

    def test_best_action_without_rng_takes_first(self):
        q = QTable(1, 3)
        assert q.best_action(0) == 0

    def test_v_is_row_max(self):
        q = QTable(2, 2)
        q.set(0, 1, 3.0)
        q.set(1, 0, -1.0)
        q.set(1, 1, -2.0)
        np.testing.assert_allclose(q.v(), [3.0, -1.0])

    def test_initial_value(self):
        q = QTable(2, 2, initial=0.5)
        assert q.get(0, 0) == 0.5

    def test_row_read_only(self):
        q = QTable(2, 2)
        with pytest.raises(ValueError):
            q.row(0)[0] = 1.0

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            QTable(0, 1)
