"""Tests for action-selection policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.policies import EpsilonGreedyPolicy, GreedyPolicy, SoftmaxPolicy


Q = np.array([0.1, 0.9, 0.3])


class TestGreedy:
    def test_picks_argmax(self):
        assert GreedyPolicy().select(Q) == 1

    def test_random_tiebreak(self):
        rng = np.random.default_rng(0)
        q = np.array([1.0, 1.0, 0.0])
        picks = {GreedyPolicy().select(q, rng) for _ in range(40)}
        assert picks == {0, 1}

    def test_deterministic_without_rng(self):
        q = np.array([1.0, 1.0])
        assert GreedyPolicy().select(q) == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GreedyPolicy().select(np.array([]))


class TestEpsilonGreedy:
    def test_zero_epsilon_is_greedy(self):
        rng = np.random.default_rng(1)
        policy = EpsilonGreedyPolicy(0.0)
        assert all(policy.select(Q, rng) == 1 for _ in range(20))

    def test_one_epsilon_is_uniform(self):
        rng = np.random.default_rng(2)
        policy = EpsilonGreedyPolicy(1.0)
        picks = [policy.select(Q, rng) for _ in range(300)]
        counts = np.bincount(picks, minlength=3)
        assert np.all(counts > 60)

    def test_exploration_rate_approximate(self):
        rng = np.random.default_rng(3)
        policy = EpsilonGreedyPolicy(0.3)
        picks = [policy.select(Q, rng) for _ in range(3000)]
        nongreedy = sum(1 for a in picks if a != 1)
        # Non-greedy picks ~ eps * 2/3.
        assert nongreedy / 3000 == pytest.approx(0.2, abs=0.04)

    def test_without_rng_falls_back_greedy(self):
        assert EpsilonGreedyPolicy(1.0).select(Q) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            EpsilonGreedyPolicy(-0.1)
        with pytest.raises(ValueError):
            EpsilonGreedyPolicy(1.1)


class TestSoftmax:
    def test_probabilities_sum_to_one(self):
        p = SoftmaxPolicy(1.0).probabilities(Q)
        assert p.sum() == pytest.approx(1.0)

    def test_low_temperature_near_greedy(self):
        rng = np.random.default_rng(4)
        policy = SoftmaxPolicy(1e-3)
        picks = [policy.select(Q, rng) for _ in range(100)]
        assert all(a == 1 for a in picks)

    def test_high_temperature_near_uniform(self):
        p = SoftmaxPolicy(1e6).probabilities(Q)
        np.testing.assert_allclose(p, 1 / 3, atol=1e-4)

    def test_numerical_stability_large_q(self):
        p = SoftmaxPolicy(1.0).probabilities(np.array([1e9, 1e9 - 1.0]))
        assert np.all(np.isfinite(p))
        assert p[0] > p[1]

    def test_without_rng_greedy(self):
        assert SoftmaxPolicy(1.0).select(Q) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SoftmaxPolicy(0.0)

    @given(st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_q(self, tau):
        """Higher Q never gets lower probability."""
        p = SoftmaxPolicy(tau).probabilities(Q)
        order = np.argsort(Q)
        assert np.all(np.diff(p[order]) >= -1e-12)


class TestRouterIntegration:
    def test_router_accepts_softmax(self):
        from repro.core import QLECProtocol
        from repro.simulation.engine import run_simulation
        from tests.conftest import make_config

        result = run_simulation(
            make_config(seed=3), QLECProtocol(policy=SoftmaxPolicy(0.5))
        )
        result.validate()

    def test_explicit_policy_overrides_epsilon(self):
        from repro.core import QLECProtocol
        from repro.simulation.state import NetworkState
        from tests.conftest import make_config

        proto = QLECProtocol(epsilon=0.5, policy=GreedyPolicy())
        proto.prepare(NetworkState(make_config()))
        assert isinstance(proto.router.policy, GreedyPolicy)
