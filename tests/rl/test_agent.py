"""Tests for the sampled Q-learning agent (validated against value
iteration, the paper's Eq. 13-15 solved exactly)."""

import numpy as np
import pytest

from repro.rl.agent import EpsilonSchedule, QLearningAgent, train_on_mdp
from repro.rl.mdp import FiniteMDP, value_iteration


def make_gridline_mdp(n=5, gamma=0.9):
    """1-D corridor: move left/right, reward 1 on entering the right
    end (absorbing).  V*(s) = gamma^(n-1-s) for non-terminal s."""
    t = np.zeros((2, n, n))
    r = np.zeros((2, n, n))
    for s in range(n):
        left = max(s - 1, 0)
        right = min(s + 1, n - 1)
        t[0, s, left] = 1.0
        t[1, s, right] = 1.0
        if right == n - 1 and s != n - 1:
            r[1, s, right] = 1.0
    # Absorbing right end.
    t[0, n - 1] = 0.0
    t[0, n - 1, n - 1] = 1.0
    t[1, n - 1] = 0.0
    t[1, n - 1, n - 1] = 1.0
    r[:, n - 1, :] = 0.0
    terminal = np.zeros(n, dtype=bool)
    terminal[n - 1] = True
    return FiniteMDP(t, r, gamma, terminal)


class TestEpsilonSchedule:
    def test_linear_decay(self):
        sched = EpsilonSchedule(start=1.0, end=0.0, decay_steps=10)
        assert sched.value(0) == 1.0
        assert sched.value(5) == pytest.approx(0.5)
        assert sched.value(10) == 0.0
        assert sched.value(999) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EpsilonSchedule(start=0.1, end=0.5)
        with pytest.raises(ValueError):
            EpsilonSchedule(decay_steps=0)


class TestQLearningAgent:
    def test_update_moves_toward_target(self):
        agent = QLearningAgent(2, 2, gamma=0.0, learning_rate=0.5,
                               rng=np.random.default_rng(0))
        err = agent.update(0, 1, reward=1.0, next_state=1)
        assert agent.q.get(0, 1) == pytest.approx(0.5)
        assert err == pytest.approx(1.0)

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ValueError):
            QLearningAgent(2, 2, gamma=2.0)
        with pytest.raises(ValueError):
            QLearningAgent(2, 2, gamma=0.9, learning_rate=0.0)

    def test_exploration_respects_epsilon_zero(self):
        agent = QLearningAgent(
            1, 3, gamma=0.9,
            epsilon=EpsilonSchedule(start=0.0, end=0.0, decay_steps=1),
            rng=np.random.default_rng(0),
        )
        agent.q.set(0, 2, 1.0)
        assert all(agent.select_action(0) == 2 for _ in range(20))

    def test_converges_to_value_iteration(self):
        """The headline guarantee: sampled Q-learning reaches the
        Bellman fixed point of §3.3 on a small MDP."""
        mdp = make_gridline_mdp(n=5, gamma=0.9)
        agent = QLearningAgent(
            mdp.n_states, mdp.n_actions, gamma=0.9, learning_rate=0.2,
            epsilon=EpsilonSchedule(start=1.0, end=0.3, decay_steps=2000),
            rng=np.random.default_rng(7),
        )
        train_on_mdp(agent, mdp, episodes=800, max_steps=30)
        v_star, _ = value_iteration(mdp)
        v_learned = agent.q.v()
        v_learned[mdp.terminal] = 0.0
        np.testing.assert_allclose(v_learned, v_star, atol=0.05)

    def test_learned_policy_is_optimal(self):
        mdp = make_gridline_mdp(n=4, gamma=0.9)
        agent = QLearningAgent(
            mdp.n_states, mdp.n_actions, gamma=0.9, learning_rate=0.3,
            rng=np.random.default_rng(3),
        )
        train_on_mdp(agent, mdp, episodes=500, max_steps=20)
        policy = agent.greedy_policy()
        # Optimal corridor policy: always move right (action 1).
        assert list(policy[:-1]) == [1] * (mdp.n_states - 1)

    def test_td_errors_shrink(self):
        mdp = make_gridline_mdp(n=4)
        agent = QLearningAgent(
            mdp.n_states, mdp.n_actions, gamma=0.9, learning_rate=0.2,
            rng=np.random.default_rng(1),
        )
        errors = train_on_mdp(agent, mdp, episodes=600, max_steps=20)
        assert errors[-100:].mean() < errors[:100].mean()

    def test_train_rejects_zero_episodes(self):
        mdp = make_gridline_mdp()
        agent = QLearningAgent(mdp.n_states, mdp.n_actions, gamma=0.9)
        with pytest.raises(ValueError):
            train_on_mdp(agent, mdp, episodes=0)

    def test_telemetry_instruments_training(self):
        from repro.telemetry import Telemetry

        mdp = make_gridline_mdp(n=4)
        agent = QLearningAgent(
            mdp.n_states, mdp.n_actions, gamma=0.9, learning_rate=0.2,
            rng=np.random.default_rng(1),
        )
        tel = Telemetry()
        train_on_mdp(agent, mdp, episodes=50, max_steps=20, telemetry=tel)
        snap = tel.snapshot()
        assert snap["rl/episodes"]["value"] == 50
        assert snap["rl/updates"]["value"] == agent.steps
        assert snap["rl/td_error"]["count"] == 50
        assert snap["time/rl/train"]["value"] > 0.0

    def test_telemetry_does_not_change_training(self):
        from repro.telemetry import Telemetry

        mdp = make_gridline_mdp(n=4)
        runs = []
        for tel in (None, Telemetry()):
            agent = QLearningAgent(
                mdp.n_states, mdp.n_actions, gamma=0.9, learning_rate=0.2,
                rng=np.random.default_rng(9),
            )
            errors = train_on_mdp(
                agent, mdp, episodes=100, max_steps=20, telemetry=tel
            )
            runs.append((errors, agent.q.values.copy()))
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        np.testing.assert_array_equal(runs[0][1], runs[1][1])
