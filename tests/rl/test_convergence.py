"""Tests for the convergence tracker (the X of Lemma 3)."""

import numpy as np
import pytest

from repro.rl.convergence import ConvergenceTracker


class TestConvergenceTracker:
    def test_first_observation_is_infinite_delta(self):
        t = ConvergenceTracker()
        assert t.observe(np.zeros(3)) == float("inf")
        assert not t.converged

    def test_detects_convergence(self):
        t = ConvergenceTracker(tol=1e-3)
        t.observe(np.array([1.0]))
        t.observe(np.array([1.5]))
        t.observe(np.array([1.5000001]))
        assert t.converged
        assert t.converged_at == 3

    def test_patience(self):
        t = ConvergenceTracker(tol=1e-3, patience=2)
        t.observe(np.array([0.0]))
        t.observe(np.array([0.0]))
        assert not t.converged  # one quiet delta, need two
        t.observe(np.array([0.0]))
        assert t.converged

    def test_regression_undeclares(self):
        t = ConvergenceTracker(tol=1e-3)
        t.observe(np.array([0.0]))
        t.observe(np.array([0.0]))
        assert t.converged
        t.observe(np.array([5.0]))
        assert not t.converged

    def test_deltas_recorded(self):
        t = ConvergenceTracker()
        t.observe(np.array([0.0]))
        t.observe(np.array([2.0]))
        assert t.deltas[1] == pytest.approx(2.0)

    def test_snapshot_is_copied(self):
        t = ConvergenceTracker(tol=1e-6)
        arr = np.array([1.0])
        t.observe(arr)
        arr[0] = 99.0  # mutating the caller's array must not corrupt
        assert t.observe(np.array([1.0])) == pytest.approx(0.0)

    def test_reset(self):
        t = ConvergenceTracker()
        t.observe(np.array([1.0]))
        t.reset()
        assert t.observations == 0 and not t.deltas

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceTracker(tol=0.0)
        with pytest.raises(ValueError):
            ConvergenceTracker(patience=0)
