"""Tests for summary statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import censored_mean, jains_index, mean_ci


class TestMeanCI:
    def test_mean(self):
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.n == 3

    def test_interval_contains_mean(self):
        ci = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert ci.lo < ci.mean < ci.hi

    def test_single_value_has_nan_width(self):
        ci = mean_ci([5.0])
        assert ci.mean == 5.0
        assert np.isnan(ci.half_width)

    def test_zero_variance_zero_width(self):
        ci = mean_ci([2.0, 2.0, 2.0])
        assert ci.half_width == pytest.approx(0.0)

    def test_wider_confidence_wider_interval(self):
        data = [1.0, 2.0, 4.0, 8.0]
        assert mean_ci(data, 0.99).half_width > mean_ci(data, 0.9).half_width

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_ci([])
        with pytest.raises(ValueError):
            mean_ci([1.0], confidence=1.0)

    def test_str_formatting(self):
        assert "±" in str(mean_ci([1.0, 2.0]))


class TestCensoredMean:
    def test_counts_censored(self):
        mean, n_cens = censored_mean([10, 20, 20], [False, True, True])
        assert mean == pytest.approx(50 / 3)
        assert n_cens == 2

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            censored_mean([1, 2], [True])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            censored_mean([], [])


class TestJainsIndex:
    def test_uniform_is_one(self):
        assert jains_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_hotspot_is_one_over_n(self):
        assert jains_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_defined_as_one(self):
        assert jains_index([0.0, 0.0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jains_index([-1.0, 1.0])

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds_property(self, values):
        idx = jains_index(values)
        assert 1.0 / len(values) - 1e-9 <= idx <= 1.0 + 1e-9


class TestLatencyPercentiles:
    def test_basic_percentiles(self):
        from repro.analysis.stats import latency_percentiles

        out = latency_percentiles(range(1, 101))
        assert out["p50"] == pytest.approx(50.5)
        assert out["p99"] == pytest.approx(99.01, abs=0.1)
        assert out["max"] == 100.0

    def test_empty_is_nan(self):
        from repro.analysis.stats import latency_percentiles

        out = latency_percentiles([])
        assert np.isnan(out["p50"]) and np.isnan(out["mean"])

    def test_custom_quantiles(self):
        from repro.analysis.stats import latency_percentiles

        out = latency_percentiles([1, 2, 3], qs=(0, 100))
        assert out["p0"] == 1.0 and out["p100"] == 3.0

    def test_integration_with_simulation(self):
        from repro.analysis.stats import latency_percentiles
        from repro.core import QLECProtocol
        from repro.simulation import run_simulation
        from tests.conftest import make_config

        result = run_simulation(make_config(seed=2), QLECProtocol())
        out = latency_percentiles(result.packets.latencies)
        assert out["p50"] <= out["p90"] <= out["p99"] <= out["max"]
