"""Tests for the protocol-comparison sweep machinery."""

import pytest

from repro.analysis.sweep import PROTOCOLS, run_cell, sweep_protocols


class TestRegistry:
    def test_known_protocols(self):
        for name in ("qlec", "fcm", "kmeans", "leach", "deec", "direct"):
            assert name in PROTOCOLS

    def test_factories_build_fresh_instances(self):
        a = PROTOCOLS["qlec"]()
        b = PROTOCOLS["qlec"]()
        assert a is not b


class TestRunCell:
    def test_summary_shape(self):
        row = run_cell("direct", 8.0, seed=0, rounds=3)
        assert row["protocol"] == "direct"
        assert row["lambda"] == 8.0
        assert 0.0 <= row["pdr"] <= 1.0

    def test_registry_name_overrides_class_name(self):
        row = run_cell("kmeans-adaptive", 8.0, seed=0, rounds=3)
        assert row["protocol"] == "kmeans-adaptive"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            run_cell("nope", 8.0, seed=0)


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_protocols(
            protocols=("direct", "kmeans"),
            lambdas=(4.0, 16.0),
            seeds=(0, 1),
            rounds=3,
            serial=True,
        )

    def test_grid_size(self, sweep):
        assert len(sweep.rows) == 2 * 2 * 2

    def test_filtered(self, sweep):
        rows = sweep.filtered(protocol="direct")
        assert len(rows) == 4
        assert all(r["protocol"] == "direct" for r in rows)

    def test_aggregate_means_over_seeds(self, sweep):
        rows = sweep.filtered(protocol="direct", **{"lambda": 4.0})
        expected = sum(r["pdr"] for r in rows) / len(rows)
        assert sweep.aggregate("pdr", "direct", 4.0) == pytest.approx(expected)

    def test_aggregate_missing_raises(self, sweep):
        with pytest.raises(KeyError):
            sweep.aggregate("pdr", "qlec", 4.0)

    def test_series_shape(self, sweep):
        s = sweep.series("pdr", ("direct", "kmeans"), (4.0, 16.0))
        assert set(s) == {"direct", "kmeans"}
        assert len(s["direct"]) == 2

    def test_aggregate_ci(self, sweep):
        ci = sweep.aggregate_ci("pdr", "direct", 4.0)
        assert ci.n == 2

    def test_parallel_matches_serial(self):
        kwargs = dict(
            protocols=("direct",), lambdas=(8.0,), seeds=(0, 1, 2), rounds=2
        )
        serial = sweep_protocols(serial=True, **kwargs)
        parallel = sweep_protocols(max_workers=2, **kwargs)
        assert serial.rows == parallel.rows


class TestSweepTelemetry:
    kwargs = dict(
        protocols=("direct", "kmeans"), lambdas=(8.0,), seeds=(0, 1),
        rounds=2, telemetry=True,
    )

    def test_cell_snapshot_attached(self):
        row = run_cell("direct", 8.0, seed=0, rounds=2, telemetry=True)
        snap = row["telemetry"]
        assert snap["packets/generated"]["value"] == row["generated"]

    def test_no_snapshot_by_default(self):
        row = run_cell("direct", 8.0, seed=0, rounds=2)
        assert "telemetry" not in row

    def test_merged_snapshot_on_result(self):
        sweep = sweep_protocols(serial=True, **self.kwargs)
        assert sweep.telemetry is not None
        assert all("telemetry" not in r for r in sweep.rows)
        total = sum(r["generated"] for r in sweep.rows)
        assert sweep.telemetry["packets/generated"]["value"] == total

    def test_disabled_leaves_none(self):
        sweep = sweep_protocols(
            protocols=("direct",), lambdas=(8.0,), seeds=(0,), rounds=2,
            serial=True,
        )
        assert sweep.telemetry is None

    def test_pool_merge_equals_serial_merge(self):
        """The acceptance check: a 2-worker pool sweep and a serial
        sweep agree exactly on every deterministic merged metric."""
        from repro.telemetry import deterministic_view

        serial = sweep_protocols(serial=True, **self.kwargs)
        pooled = sweep_protocols(max_workers=2, **self.kwargs)
        assert deterministic_view(serial.telemetry) == deterministic_view(
            pooled.telemetry
        )
