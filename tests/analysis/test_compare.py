"""Tests for paired protocol comparison statistics."""

import pytest

from repro.analysis.compare import paired_comparison, win_matrix
from repro.analysis.sweep import SweepResult


def synthetic_sweep():
    """Hand-built sweep: protocol 'a' beats 'b' on pdr at every seed."""
    rows = []
    for seed in range(6):
        for lam in (4.0, 8.0):
            rows.append(
                {"protocol": "a", "seed": seed, "lambda": lam,
                 "pdr": 0.9 + 0.01 * seed}
            )
            rows.append(
                {"protocol": "b", "seed": seed, "lambda": lam,
                 "pdr": 0.8 + 0.01 * seed}
            )
    return SweepResult(rows=rows)


class TestPairedComparison:
    def test_mean_diff_sign(self):
        cmp = paired_comparison(synthetic_sweep(), "pdr", "a", "b")
        assert cmp.mean_diff == pytest.approx(0.1)
        assert cmp.wins == 12 and cmp.losses == 0

    def test_significance_when_consistent(self):
        cmp = paired_comparison(synthetic_sweep(), "pdr", "a", "b")
        assert cmp.significant
        assert cmp.ci_lo > 0.0
        assert cmp.p_value < 0.01

    def test_symmetric(self):
        sweep = synthetic_sweep()
        ab = paired_comparison(sweep, "pdr", "a", "b")
        ba = paired_comparison(sweep, "pdr", "b", "a")
        assert ab.mean_diff == pytest.approx(-ba.mean_diff)

    def test_lambda_filter(self):
        cmp = paired_comparison(
            synthetic_sweep(), "pdr", "a", "b", mean_interarrival=4.0
        )
        assert cmp.n == 6

    def test_ties_counted(self):
        rows = [
            {"protocol": "a", "seed": 0, "lambda": 4.0, "pdr": 0.5},
            {"protocol": "b", "seed": 0, "lambda": 4.0, "pdr": 0.5},
        ]
        cmp = paired_comparison(SweepResult(rows=rows), "pdr", "a", "b")
        assert cmp.ties == 1
        assert cmp.p_value == 1.0
        assert not cmp.significant

    def test_missing_pairs_rejected(self):
        rows = [{"protocol": "a", "seed": 0, "lambda": 4.0, "pdr": 0.5}]
        with pytest.raises(ValueError):
            paired_comparison(SweepResult(rows=rows), "pdr", "a", "b")

    def test_str_contains_essentials(self):
        text = str(paired_comparison(synthetic_sweep(), "pdr", "a", "b"))
        assert "a - b" in text and "pdr" in text


class TestWinMatrix:
    def test_dominance(self):
        matrix = win_matrix(synthetic_sweep(), "pdr", ("a", "b"))
        assert matrix[("a", "b")] == 1.0
        assert matrix[("b", "a")] == 0.0

    def test_lower_is_better_flips(self):
        matrix = win_matrix(
            synthetic_sweep(), "pdr", ("a", "b"), higher_is_better=False
        )
        assert matrix[("a", "b")] == 0.0

    def test_real_sweep_integration(self):
        from repro.analysis import sweep_protocols

        sweep = sweep_protocols(
            protocols=("qlec", "direct"),
            lambdas=(4.0,),
            seeds=(0, 1, 2),
            rounds=3,
            serial=True,
        )
        cmp = paired_comparison(sweep, "pdr", "qlec", "direct")
        assert cmp.n == 3
        assert cmp.mean_diff > 0  # clustering beats flooding the BS
