"""Tests for sweep persistence (JSON round-trip, CSV export)."""

import json

import pytest

from repro.analysis.io import load_sweep, rows_to_csv, save_sweep, sweep_to_csv
from repro.analysis.sweep import SweepResult


def sample_sweep():
    return SweepResult(
        rows=[
            {"protocol": "qlec", "lambda": 4.0, "seed": 0, "pdr": 0.9},
            {"protocol": "fcm", "lambda": 4.0, "seed": 0, "pdr": 0.8},
        ]
    )


class TestJSONRoundTrip:
    def test_round_trip_preserves_rows(self, tmp_path):
        path = tmp_path / "sweep.json"
        original = sample_sweep()
        save_sweep(original, path)
        loaded = load_sweep(path)
        assert loaded.rows == original.rows

    def test_loaded_sweep_aggregates(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sample_sweep(), path)
        loaded = load_sweep(path)
        assert loaded.aggregate("pdr", "qlec", 4.0) == pytest.approx(0.9)

    def test_rejects_wrong_format_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 999, "rows": []}))
        with pytest.raises(ValueError, match="unsupported"):
            load_sweep(path)

    def test_rejects_non_sweep_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a sweep"):
            load_sweep(path)

    def test_real_sweep_round_trip(self, tmp_path):
        from repro.analysis import sweep_protocols

        sweep = sweep_protocols(
            protocols=("direct",), lambdas=(8.0,), seeds=(0,),
            rounds=2, serial=True,
        )
        path = tmp_path / "real.json"
        save_sweep(sweep, path)
        assert load_sweep(path).rows == sweep.rows


class TestCSV:
    def test_header_and_rows(self):
        text = rows_to_csv(sample_sweep().rows)
        lines = text.strip().splitlines()
        assert lines[0] == "protocol,lambda,seed,pdr"
        assert len(lines) == 3

    def test_union_of_keys(self):
        text = rows_to_csv([{"a": 1}, {"b": 2}])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,"
        assert lines[2] == ",2"

    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_file_export(self, tmp_path):
        path = tmp_path / "sweep.csv"
        sweep_to_csv(sample_sweep(), path)
        assert path.read_text().startswith("protocol,")
