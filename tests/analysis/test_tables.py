"""Tests for ASCII table rendering."""

import pytest

from repro.analysis.tables import (
    render_kv,
    render_series,
    render_table,
    render_telemetry,
)


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_missing_keys_render_dash(self):
        out = render_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "-" in out.splitlines()[-1]

    def test_title(self):
        out = render_table([{"x": 1}], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        assert "(no rows)" in render_table([])

    def test_precision(self):
        out = render_table([{"v": 1.23456789}], precision=2)
        assert "1.23" in out and "1.2346" not in out

    def test_bool_rendering(self):
        out = render_table([{"ok": True}, {"ok": False}])
        assert "yes" in out and "no" in out

    def test_column_order_respected(self):
        out = render_table([{"b": 1, "a": 2}], columns=["a", "b"])
        header = out.splitlines()[0]
        assert header.index("a") < header.index("b")

    def test_alignment_consistent(self):
        out = render_table([{"name": "x", "v": 1}, {"name": "longer", "v": 22}])
        lines = out.splitlines()
        assert len({len(l) for l in lines[0:1] + lines[2:]}) == 1


class TestRenderSeries:
    def test_figure_shape(self):
        out = render_series(
            "lambda", [2, 4], {"qlec": [0.9, 0.95], "fcm": [0.8, 0.9]}
        )
        lines = out.splitlines()
        assert lines[0].split("|")[0].strip() == "lambda"
        assert "qlec" in lines[0] and "fcm" in lines[0]
        assert len(lines) == 4

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2], {"s": [1.0]})


class TestRenderKV:
    def test_pairs(self):
        out = render_kv({"nodes": 100, "pdr": 0.912345}, precision=3)
        assert "nodes" in out
        assert "0.912" in out

    def test_title(self):
        out = render_kv({"a": 1}, title="Header")
        assert out.splitlines()[0] == "Header"

    def test_empty(self):
        assert render_kv({}) == ""


class TestRenderTelemetry:
    @pytest.fixture
    def snapshot(self):
        """A realistic engine snapshot, as produced by run_cell."""
        return {
            "time/phase/ch_select": {"kind": "counter", "value": 0.2},
            "time/phase/channel": {"kind": "counter", "value": 0.1},
            "time/phase/setup": {"kind": "counter", "value": 0.1},
            "time/round": {
                "kind": "gauge", "count": 5, "total": 0.41,
                "min": 0.05, "max": 0.12,
            },
            "energy/tx_j": {"kind": "counter", "value": 1.5},
            "energy/rx_j": {"kind": "counter", "value": 0.5},
            "packets/generated": {"kind": "counter", "value": 100},
            "packets/delivered": {"kind": "counter", "value": 90},
            "channel/attempts": {"kind": "counter", "value": 120},
            "channel/acks": {"kind": "counter", "value": 110},
        }

    def test_pipeline_order(self, snapshot):
        out = render_telemetry(snapshot)
        assert out.index("setup") < out.index("ch_select") < out.index("channel")

    def test_shares_and_coverage(self, snapshot):
        out = render_telemetry(snapshot)
        assert "(sum)" in out
        assert "phase coverage" in out
        assert "5 rounds" in out

    def test_energy_and_packet_blocks(self, snapshot):
        out = render_telemetry(snapshot)
        assert "energy by category" in out
        assert "packets by outcome" in out
        assert "generated" in out

    def test_channel_summary(self, snapshot):
        assert "110/120" in render_telemetry(snapshot)

    def test_unknown_phase_appended(self, snapshot):
        snapshot["time/phase/zz_custom"] = {"kind": "counter", "value": 0.01}
        out = render_telemetry(snapshot)
        assert "zz_custom" in out
        assert out.index("channel") < out.index("zz_custom")

    def test_empty_snapshot(self):
        assert "(no telemetry)" in render_telemetry({})


class TestRenderTelemetryTolerance:
    """Snapshots from newer producers must render, never KeyError."""

    def test_unknown_metric_names_ignored(self):
        snapshot = {
            "prof/kernels/distance_block/calls": {"kind": "counter", "value": 9},
            "totally/new/metric": {"kind": "counter", "value": 1},
            "packets/generated": {"kind": "counter", "value": 10},
        }
        out = render_telemetry(snapshot)
        assert "generated" in out

    def test_gauge_shaped_metric_under_known_prefix(self):
        # A gauge under packets/ (no "value" key) must render via its
        # total, not crash the counter-assuming comprehension.
        snapshot = {
            "packets/generated": {"kind": "counter", "value": 10},
            "packets/inflight": {
                "kind": "gauge", "count": 2, "total": 7.0,
                "min": 3.0, "max": 4.0,
            },
        }
        out = render_telemetry(snapshot)
        assert "inflight" in out and "generated" in out

    def test_unrecognized_shape_renders_zero(self):
        snapshot = {"energy/tx_j": {"kind": "mystery", "blob": [1, 2]}}
        out = render_telemetry(snapshot)
        assert "tx" in out

    def test_channel_attempts_without_acks(self):
        snapshot = {"channel/attempts": {"kind": "counter", "value": 5}}
        out = render_telemetry(snapshot)
        assert "0/5" in out

    def test_acks_without_attempts_no_crash(self):
        snapshot = {"channel/acks": {"kind": "counter", "value": 5}}
        render_telemetry(snapshot)  # must not raise

    def test_gauge_shaped_phase_metric(self):
        snapshot = {
            "time/phase/setup": {
                "kind": "gauge", "count": 1, "total": 0.25,
                "min": 0.25, "max": 0.25,
            },
        }
        out = render_telemetry(snapshot)
        assert "setup" in out
