"""Tests for the ASCII rasteriser."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import (
    grid_to_text,
    heatmap_ascii,
    network_ascii,
    scatter_ascii,
)


class TestScatter:
    def test_corners_land_in_corners(self):
        pts = np.array([[0.0, 0.0], [10.0, 10.0]])
        grid = scatter_ascii(pts, width=10, height=5, marker="x")
        text = grid_to_text(grid)
        rows = text.splitlines()
        assert rows[-1][0] == "x"   # (0,0) bottom-left
        assert rows[0][-1] == "x"   # (10,10) top-right

    def test_overlay_preserves_base(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[10.0, 10.0]])
        extent = (0.0, 10.0, 0.0, 10.0)
        grid = scatter_ascii(a, 10, 5, ".", extent)
        grid = scatter_ascii(b, 10, 5, "H", extent, base=grid)
        text = grid_to_text(grid)
        assert "." in text and "H" in text

    def test_degenerate_single_point(self):
        grid = scatter_ascii(np.array([[3.0, 3.0]]), 8, 4)
        assert sum(ch != " " for row in grid for ch in row) == 1

    def test_empty_points(self):
        grid = scatter_ascii(np.zeros((0, 2)), 8, 4)
        assert all(ch == " " for row in grid for ch in row)

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter_ascii(np.zeros((2, 1)))
        with pytest.raises(ValueError):
            scatter_ascii(np.zeros((2, 2)), width=1)
        with pytest.raises(ValueError):
            scatter_ascii(np.zeros((2, 2)), marker="ab")

    def test_3d_points_use_xy(self):
        pts = np.array([[0.0, 0.0, 99.0], [5.0, 5.0, -7.0]])
        grid = scatter_ascii(pts, 6, 4)
        assert sum(ch != " " for row in grid for ch in row) == 2


class TestHeatmap:
    def test_extremes_use_ramp_ends(self):
        text = heatmap_ascii(np.array([[0.0, 1.0]]), ramp=" #")
        assert text == " #"

    def test_nan_rendered_as_question(self):
        text = heatmap_ascii(np.array([[0.0, np.nan, 1.0]]))
        assert "?" in text

    def test_constant_field(self):
        text = heatmap_ascii(np.full((2, 3), 5.0))
        assert len(set(text.replace("\n", ""))) == 1

    def test_all_nan(self):
        text = heatmap_ascii(np.full((2, 2), np.nan))
        assert text == "??\n??"

    def test_validation(self):
        with pytest.raises(ValueError):
            heatmap_ascii(np.zeros(3))
        with pytest.raises(ValueError):
            heatmap_ascii(np.zeros((2, 2)), ramp="x")


class TestNetworkAscii:
    def test_markers_present(self):
        rng = np.random.default_rng(0)
        pos = rng.random((30, 3)) * 100
        text = network_ascii(pos, heads=[0, 1], bs_position=(50, 50, 50))
        assert "H" in text and "S" in text and "." in text

    def test_without_heads_or_bs(self):
        pos = np.random.default_rng(1).random((5, 3))
        text = network_ascii(pos)
        assert "H" not in text and "S" not in text
