"""Injector behaviour against the live engine: each fault kind does
what its name says, the accounting ledger balances, the fault stream is
isolated from every other RNG stream, and everything is reproducible."""

import numpy as np
import pytest

from repro.core import QLECProtocol
from repro.faults import FaultEvent, FaultPlan, rounds_to_recover
from repro.simulation.engine import SimulationEngine, run_simulation
from tests.conftest import make_config


def _run(plan, *, seed=0, rounds=6, protocol=None, **cfg):
    config = make_config(seed=seed, rounds=rounds, faults=plan, **cfg)
    return run_simulation(config, protocol or QLECProtocol())


class TestEventSemantics:
    def test_crash_kills_named_nodes(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="crash", round=1, nodes=(3, 5, 9)),)
        )
        result = _run(plan)
        result.validate()
        f = result.faults
        assert f["deaths_by_cause"]["crash"] == 3
        assert f["fatal"] == 1 and f["absorbed"] == 0

    def test_crash_by_count_draws_that_many(self):
        plan = FaultPlan(events=(FaultEvent(kind="crash", round=1, count=4),))
        result = _run(plan)
        assert result.faults["deaths_by_cause"]["crash"] == 4

    def test_revive_restores_population(self):
        victims = (0, 1, 2, 3)
        plan = FaultPlan(
            events=(
                FaultEvent(kind="crash", round=1, nodes=victims),
                FaultEvent(kind="revive", round=2, nodes=victims),
            )
        )
        result = _run(plan, initial_energy=1.0)
        result.validate()
        assert result.faults["revived"] == len(victims)
        assert result.n_alive_final == result.consumption_ratio.size

    def test_drain_books_no_radio_spend(self):
        """A battery anomaly leaks joules without transmitting them:
        total (radio) energy must match the fault-free run's shape —
        specifically, consumption_ratio tracks radio spend only and
        the run's energy books stay consistent."""
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind="battery_drain", round=1, nodes=(0, 1), factor=0.9
                ),
            )
        )
        result = _run(plan)
        result.validate()
        assert result.faults["events_by_kind"]["battery_drain"] == 1

    def test_drain_across_death_line_is_fatal(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind="battery_drain", round=1, count=3, factor=1.0
                ),
            )
        )
        result = _run(plan)
        result.validate()
        assert result.faults["fatal"] == 1
        assert result.faults["deaths_by_cause"].get("drain", 0) >= 3

    def test_blackout_window_opens_and_closes(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="blackout", round=2, duration=2),)
        )
        engine = SimulationEngine(
            make_config(seed=3, rounds=6, faults=plan), QLECProtocol()
        )
        delivered = []
        for _ in range(6):
            before = engine._totals.delivered
            engine.run_round()
            delivered.append(engine._totals.delivered - before)
        assert delivered[2] == 0 and delivered[3] == 0
        assert delivered[1] > 0 and delivered[4] > 0  # closes on schedule

    def test_degrade_lowers_channel_deliveries(self):
        base = _run(FaultPlan())
        plan = FaultPlan(
            events=(
                FaultEvent(kind="degrade", round=0, duration=6, factor=0.3),
            )
        )
        worse = _run(plan)
        assert worse.packets.dropped_channel > base.packets.dropped_channel

    def test_link_degrade_only_touches_victims(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind="link_degrade", round=0, nodes=(0,), duration=1,
                    factor=0.5,
                ),
            )
        )
        engine = SimulationEngine(
            make_config(seed=4, rounds=3, faults=plan), QLECProtocol()
        )
        engine.run_round()
        nf = engine.state.channel.node_factor
        assert nf is not None
        assert nf[0] == 0.5
        assert (nf[1:] == 1.0).all()
        engine.run_round()  # window expired
        assert engine.state.channel.node_factor[0] == 1.0

    def test_queue_clamp_window(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="queue_clamp", round=0, duration=6, capacity=0),
            )
        )
        result = _run(plan, mean_interarrival=2.0)
        result.validate()
        # Zero-capacity heads bounce everything head-bound.
        assert result.packets.dropped_queue > 0

    def test_ch_kill_at_election_removes_heads(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="ch_kill", round=1, count=2),)
        )
        result = _run(plan)
        result.validate()
        assert result.faults["deaths_by_cause"]["ch_kill"] == 2
        # The round still ran with the surviving heads (no crash).
        assert result.rounds_executed == 6


class TestDeterminism:
    PLAN = FaultPlan(
        events=(
            FaultEvent(kind="crash", round=1, count=3),
            FaultEvent(kind="ch_kill", round=2, slot=3, count=1),
            FaultEvent(kind="degrade", round=3, duration=2, factor=0.6),
        )
    )

    def test_same_plan_same_seed_bit_identical(self):
        a = _run(self.PLAN, seed=5)
        b = _run(self.PLAN, seed=5)
        assert a.summary() == b.summary()
        assert a.faults == b.faults
        np.testing.assert_array_equal(a.residual_final, b.residual_final)

    def test_scalar_equals_batched(self):
        config = make_config(seed=5, rounds=6, faults=self.PLAN)
        a = run_simulation(config, QLECProtocol(), batched=True)
        b = run_simulation(config, QLECProtocol(), batched=False)
        assert a.summary() == b.summary()
        assert a.faults == b.faults
        np.testing.assert_array_equal(a.residual_final, b.residual_final)

    def test_fault_stream_isolated_from_simulation_streams(self):
        """Before any fault fires, a planned run with neutral recovery
        knobs (unbounded budget, zero backoff = the stock ARQ schedule)
        is bit-identical per round to the no-fault run: fault draws
        consume only the dedicated stream."""
        plan = FaultPlan(
            events=(FaultEvent(kind="crash", round=4, count=5),),
            retry_budget=10**9,
            backoff_base=0,
        )
        base = run_simulation(
            make_config(seed=6, rounds=4, initial_energy=1.0),
            QLECProtocol(),
        )
        chaotic = run_simulation(
            make_config(seed=6, rounds=4, initial_energy=1.0, faults=plan),
            QLECProtocol(),
        )
        for a, b in zip(base.per_round, chaotic.per_round):
            assert a.packets.delivered == b.packets.delivered
            assert a.energy_consumed == b.energy_consumed

    def test_empty_plan_validates(self):
        result = _run(FaultPlan())
        result.validate()
        assert result.faults["injected"] == 0
        assert result.faults["fault_rounds"] == []


class TestTelemetry:
    def test_fault_counters_recorded(self):
        from repro.telemetry import Telemetry

        plan = FaultPlan(
            events=(
                FaultEvent(kind="crash", round=1, count=2),
                FaultEvent(kind="blackout", round=2, duration=1),
            )
        )
        tel = Telemetry()
        config = make_config(seed=7, rounds=5, faults=plan)
        run_simulation(config, QLECProtocol(), telemetry=tel)
        snap = tel.snapshot()
        assert snap["faults/injected"]["value"] == 2
        assert snap["faults/fatal"]["value"] == 1
        assert snap["faults/absorbed"]["value"] == 1
        assert snap["deaths/crash"]["value"] == 2


class TestRecoveryMetrics:
    def test_rounds_to_recover_validates_inputs(self):
        result = _run(FaultPlan())
        with pytest.raises(ValueError):
            rounds_to_recover(result, fault_round=0)  # empty baseline
        with pytest.raises(ValueError):
            rounds_to_recover(result, fault_round=99)
