"""FaultPlan / FaultEvent: validation, serialisation, identity."""

import json

import pytest

from repro.config import DeploymentConfig, paper_config
from repro.faults import (
    EVENT_KINDS,
    FAULT_SCENARIOS,
    FaultEvent,
    FaultPlan,
    build_fault_plan,
    fault_scenario_names,
)
from repro.telemetry.manifest import config_fingerprint


class TestEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor", round=0)

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError, match="round"):
            FaultEvent(kind="blackout", round=-1)

    def test_nodes_and_count_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            FaultEvent(kind="crash", round=0, nodes=(1, 2), count=3)

    def test_node_kinds_need_victims(self):
        for kind in ("crash", "revive", "ch_kill", "battery_drain"):
            with pytest.raises(ValueError, match="nodes or count"):
                FaultEvent(kind=kind, round=0)

    def test_empty_nodes_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            FaultEvent(kind="crash", round=0, nodes=())

    def test_negative_node_index_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultEvent(kind="crash", round=0, nodes=(-1,))

    def test_slot_only_for_ch_kill(self):
        with pytest.raises(ValueError, match="ch_kill"):
            FaultEvent(kind="crash", round=0, nodes=(1,), slot=2)
        FaultEvent(kind="ch_kill", round=0, count=1, slot=2)  # fine

    def test_window_kinds_need_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(kind="blackout", round=0, duration=0)

    def test_factor_bounds(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(kind="degrade", round=0, factor=1.5)
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(kind="battery_drain", round=0, count=1, factor=-0.1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            FaultEvent(kind="queue_clamp", round=0, capacity=-1)


class TestPlanValidation:
    def test_events_must_be_events(self):
        with pytest.raises(TypeError):
            FaultPlan(events=("not-an-event",))

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="retry_budget"):
            FaultPlan(retry_budget=-1)
        with pytest.raises(ValueError, match="backoff_base"):
            FaultPlan(backoff_base=-1)

    def test_last_round_covers_windows(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="crash", round=2, nodes=(0,)),
                FaultEvent(kind="blackout", round=1, duration=4),
            ),
        )
        assert plan.last_round() == 5


class TestSerialisation:
    PLAN = FaultPlan(
        events=(
            FaultEvent(kind="ch_kill", round=3, slot=2, count=2),
            FaultEvent(kind="link_degrade", round=1, nodes=(4, 7),
                       factor=0.3, duration=2),
            FaultEvent(kind="queue_clamp", round=5, duration=3, capacity=1),
        ),
        recovery=False,
        retry_budget=3,
        backoff_base=2,
    )

    def test_payload_round_trip(self):
        payload = json.loads(json.dumps(self.PLAN.to_payload()))
        assert FaultPlan.from_payload(payload) == self.PLAN

    def test_fingerprint_stable_and_sensitive(self):
        assert self.PLAN.fingerprint == FaultPlan.from_payload(
            self.PLAN.to_payload()
        ).fingerprint
        other = FaultPlan(events=self.PLAN.events, recovery=True,
                          retry_budget=3, backoff_base=2)
        assert other.fingerprint != self.PLAN.fingerprint

    def test_plan_changes_config_fingerprint(self):
        base = paper_config(seed=0)
        with_plan = base.replace(faults=self.PLAN)
        empty = base.replace(faults=FaultPlan())
        fps = {
            config_fingerprint(base),
            config_fingerprint(with_plan),
            config_fingerprint(empty),
        }
        assert len(fps) == 3  # None, empty plan, real plan all distinct


class TestCatalog:
    def test_names_sorted_and_complete(self):
        assert fault_scenario_names() == sorted(FAULT_SCENARIOS)

    @pytest.mark.parametrize("name", sorted(FAULT_SCENARIOS))
    def test_every_scenario_builds_within_horizon(self, name):
        config = paper_config(seed=0, rounds=16)
        plan = build_fault_plan(name, config)
        assert isinstance(plan, FaultPlan)
        assert plan.events
        assert plan.last_round() <= config.rounds
        for ev in plan.events:
            assert ev.kind in EVENT_KINDS

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown fault scenario"):
            build_fault_plan("nope", paper_config(seed=0))

    def test_scenarios_scale_with_population(self):
        small = build_fault_plan("churn", paper_config(seed=0))
        big_cfg = paper_config(seed=0).replace(
            deployment=DeploymentConfig(
                n_nodes=1000, side=200.0, initial_energy=0.25
            )
        )
        big = build_fault_plan("churn", big_cfg)

        def crashed(p):
            return sum(e.count for e in p.events if e.kind == "crash")

        assert crashed(big) > crashed(small)
