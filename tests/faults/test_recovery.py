"""Graceful-degradation acceptance: a mid-round CH kill must dent PDR
for at most a bounded number of rounds, after which delivery returns to
within 10 % of its pre-fault level (members re-attach to live heads or
fall back to the BS; retries are budgeted, not unbounded)."""

import numpy as np

from repro.config import paper_config
from repro.core import QLECProtocol
from repro.faults import (
    FaultEvent,
    FaultPlan,
    build_fault_plan,
    per_round_pdr,
    rounds_to_recover,
)
from repro.simulation import run_simulation
from tests.conftest import make_config

#: Acceptance bound: PDR back within 10 % of the pre-fault baseline in
#: at most this many rounds after the fault round.
MAX_RECOVERY_ROUNDS = 3


class TestCHKillRecovery:
    def test_mid_round_ch_kill_recovers_on_paper_network(self):
        """The acceptance scenario: the Table-2 network, two cluster
        heads assassinated mid-round."""
        config = paper_config(seed=0, rounds=12)
        plan = build_fault_plan("ch-kill-mid", config)
        fault_round = plan.events[0].round
        result = run_simulation(config.replace(faults=plan), QLECProtocol())
        result.validate()
        assert result.faults["deaths_by_cause"]["ch_kill"] == 2

        lag = rounds_to_recover(result, fault_round, threshold=0.9)
        assert lag is not None, "PDR never recovered after the CH kill"
        assert lag <= MAX_RECOVERY_ROUNDS

    def test_recovery_beats_naive_degradation(self):
        """With ``recovery=False`` senders keep banging on the dead
        head through the stock ARQ; masking + re-attachment must not
        deliver less in the fault round."""
        config = make_config(seed=1, rounds=8, mean_interarrival=2.0)
        events = (
            FaultEvent(
                kind="ch_kill", round=2,
                slot=config.traffic.slots_per_round // 2, count=2,
            ),
        )
        helped = run_simulation(
            config.replace(faults=FaultPlan(events=events, recovery=True)),
            QLECProtocol(),
        )
        naive = run_simulation(
            config.replace(faults=FaultPlan(events=events, recovery=False)),
            QLECProtocol(),
        )
        helped.validate()
        naive.validate()
        assert (
            helped.per_round[2].packets.delivered
            >= naive.per_round[2].packets.delivered
        )

    def test_retry_budget_bounds_energy(self):
        """A tighter retry budget cannot spend more energy than a
        looser one under the same blackout (retries are the only knob
        that differs)."""
        config = make_config(seed=2, rounds=5, initial_energy=1.0)
        events = (FaultEvent(kind="blackout", round=1, duration=3),)
        tight = run_simulation(
            config.replace(
                faults=FaultPlan(events=events, retry_budget=1)
            ),
            QLECProtocol(),
        )
        loose = run_simulation(
            config.replace(
                faults=FaultPlan(events=events, retry_budget=64)
            ),
            QLECProtocol(),
        )
        assert tight.total_energy <= loose.total_energy + 1e-12


class TestRecoveryMetrics:
    def test_per_round_pdr_shape(self):
        result = run_simulation(make_config(seed=3), QLECProtocol())
        pdr = per_round_pdr(result)
        assert len(pdr) == result.rounds_executed
        assert np.all(np.asarray(pdr) >= 0.0)

    def test_rounds_to_recover_zero_when_no_dip(self):
        """A plan whose fault changes nothing (reviving nobody) keeps
        PDR at baseline: recovery lag is 0."""
        plan = FaultPlan(
            events=(FaultEvent(kind="revive", round=4, count=1),)
        )
        result = run_simulation(
            make_config(seed=4, rounds=8, initial_energy=1.0, faults=plan),
            QLECProtocol(),
        )
        assert rounds_to_recover(result, 4, threshold=0.5) == 0

    def test_rounds_to_recover_none_when_never(self):
        """A blackout that lasts to the end of the run never recovers."""
        plan = FaultPlan(
            events=(FaultEvent(kind="blackout", round=4, duration=10),)
        )
        result = run_simulation(
            make_config(seed=5, rounds=8, initial_energy=1.0, faults=plan),
            QLECProtocol(),
        )
        assert rounds_to_recover(result, 4) is None
