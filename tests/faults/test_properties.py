"""Property-based chaos: for *any* valid fault plan the simulator may
never violate its accounting invariants, and the scalar slot path must
stay bit-identical to the batched kernels.

Strategies build small plans against a small network (12 nodes, 4
rounds) so every example is a real simulation at tolerable cost.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QLECProtocol
from repro.faults import FaultEvent, FaultPlan
from repro.simulation import run_simulation
from tests.conftest import make_config

N_NODES = 12
ROUNDS = 4
SLOTS = 10  # make_config default traffic keeps slots_per_round=10

_rounds = st.integers(min_value=0, max_value=ROUNDS - 1)
_victims = st.one_of(
    st.none(),
    st.lists(
        st.integers(min_value=0, max_value=N_NODES - 1),
        min_size=1, max_size=N_NODES, unique=True,
    ).map(tuple),
)


@st.composite
def fault_events(draw):
    kind = draw(st.sampled_from((
        "crash", "revive", "ch_kill", "blackout", "degrade",
        "link_degrade", "queue_clamp", "battery_drain",
    )))
    kwargs = {"kind": kind, "round": draw(_rounds)}
    if kind in ("crash", "revive", "ch_kill", "link_degrade", "battery_drain"):
        nodes = draw(_victims)
        if nodes is None:
            kwargs["count"] = draw(st.integers(min_value=1, max_value=6))
        else:
            kwargs["nodes"] = nodes
    if kind == "ch_kill":
        kwargs["slot"] = draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=SLOTS - 1))
        )
    if kind in ("blackout", "degrade", "link_degrade", "queue_clamp"):
        kwargs["duration"] = draw(st.integers(min_value=1, max_value=ROUNDS))
    if kind in ("degrade", "link_degrade", "battery_drain"):
        kwargs["factor"] = draw(
            st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False)
        )
    if kind == "queue_clamp":
        kwargs["capacity"] = draw(st.integers(min_value=0, max_value=4))
    return FaultEvent(**kwargs)


fault_plans = st.builds(
    FaultPlan,
    events=st.lists(fault_events(), min_size=0, max_size=5).map(tuple),
    recovery=st.booleans(),
    retry_budget=st.integers(min_value=0, max_value=16),
    backoff_base=st.integers(min_value=0, max_value=3),
)


class TestChaosProperties:
    @given(plan=fault_plans, seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_accounting_survives_any_plan(self, plan, seed):
        config = make_config(
            n_nodes=N_NODES, n_clusters=2, rounds=ROUNDS, seed=seed,
            faults=plan,
        )
        result = run_simulation(config, QLECProtocol())
        result.validate()  # includes the fault-accounting invariants
        assert result.total_energy >= 0.0
        assert result.packets.delivered <= result.packets.generated
        assert 0.0 <= result.delivery_rate <= 1.0
        assert result.faults["injected"] == (
            result.faults["absorbed"] + result.faults["fatal"]
        )

    @given(plan=fault_plans, seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=12, deadline=None)
    def test_scalar_equals_batched_under_any_plan(self, plan, seed):
        config = make_config(
            n_nodes=N_NODES, n_clusters=2, rounds=ROUNDS, seed=seed,
            faults=plan,
        )
        batched = run_simulation(config, QLECProtocol(), batched=True)
        scalar = run_simulation(config, QLECProtocol(), batched=False)
        assert batched.summary() == scalar.summary()
        assert batched.faults == scalar.faults
        np.testing.assert_array_equal(
            batched.residual_final, scalar.residual_final
        )
