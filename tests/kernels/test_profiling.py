"""Tests for the kernel-profiling wrapper (repro.kernels.profiling)."""

import numpy as np
import pytest

from repro.core import QLECProtocol
from repro.kernels import NumpyBackend, ProfiledBackend
from repro.simulation import run_simulation
from repro.telemetry import (
    MetricRegistry,
    SpanTracer,
    Telemetry,
    deterministic_view,
)
from tests.conftest import make_config

RNG = np.random.default_rng(42)


@pytest.fixture
def bare():
    return NumpyBackend()


@pytest.fixture
def profiled(bare):
    return ProfiledBackend(bare, registry=MetricRegistry())


class TestDelegation:
    """Every method must be numerically invisible — bit-identical to
    the bare backend it wraps."""

    def test_identity_proxied(self, bare, profiled):
        assert profiled.name == bare.name
        assert profiled.equivalence == bare.equivalence

    def test_distance_block(self, bare, profiled):
        src, dst = RNG.random((5, 3)), RNG.random((7, 3))
        np.testing.assert_array_equal(
            profiled.distance_block(src, dst), bare.distance_block(src, dst)
        )

    def test_distance_block_blocked_counts_once(self, bare, profiled):
        src, dst = RNG.random((64, 3)), RNG.random((64, 3))
        out = profiled.distance_block_blocked(src, dst, max_block_mb=0.01)
        np.testing.assert_array_equal(out, bare.distance_block(src, dst))
        snap = profiled.registry.snapshot()
        # The whole chunked call delegates: one engine-level call, one
        # count — not one per internal chunk.
        assert snap["prof/kernels/distance_block/calls"]["value"] == 1

    def test_distance_pairs(self, bare, profiled):
        src, dst = RNG.random((6, 3)), RNG.random((6, 3))
        np.testing.assert_array_equal(
            profiled.distance_pairs(src, dst), bare.distance_pairs(src, dst)
        )

    def test_bernoulli(self, bare, profiled):
        p, u = RNG.random(20), RNG.random(20)
        np.testing.assert_array_equal(
            profiled.bernoulli(p, u), bare.bernoulli(p, u)
        )

    def test_grouped_discharge(self, bare, profiled):
        n = 12
        res_a = RNG.random(n) + 0.5
        res_b = res_a.copy()
        alive_a = np.ones(n, dtype=bool)
        alive_b = alive_a.copy()
        idx = np.array([0, 3, 3, 7], dtype=np.int64)
        amounts = np.full(4, 0.1)
        out_a = profiled.grouped_discharge(res_a, alive_a, idx, amounts, 0.0)
        out_b = bare.grouped_discharge(res_b, alive_b, idx, amounts, 0.0)
        np.testing.assert_array_equal(out_a, out_b)
        np.testing.assert_array_equal(res_a, res_b)


class TestCounters:
    def test_counters_accumulate(self, profiled):
        src, dst = RNG.random((4, 3)), RNG.random((5, 3))
        profiled.distance_block(src, dst)
        profiled.distance_block(src, dst)
        snap = profiled.registry.snapshot()
        assert snap["prof/kernels/distance_block/calls"]["value"] == 2
        assert snap["prof/kernels/distance_block/elements"]["value"] == 2 * 20
        assert snap["prof/kernels/distance_block/bytes"]["value"] > 0
        assert snap["time/kernel/distance_block"]["value"] > 0

    def test_no_registry_no_tracer_still_delegates(self, bare):
        profiled = ProfiledBackend(bare)
        src, dst = RNG.random((3, 3)), RNG.random((3, 3))
        np.testing.assert_array_equal(
            profiled.distance_block(src, dst), bare.distance_block(src, dst)
        )

    def test_tracer_records_kernel_spans(self, bare):
        trc = SpanTracer()
        profiled = ProfiledBackend(bare, tracer=trc)
        profiled.distance_pairs(RNG.random((4, 3)), RNG.random((4, 3)))
        kernel = next(ev for ev in trc.events if ev["cat"] == "kernel")
        assert kernel["name"] == "distance_pairs"
        assert kernel["args"]["elements"] == 4


class TestEngineProfiling:
    def test_profile_kernels_opt_in(self):
        tel = Telemetry(profile_kernels=True)
        result = run_simulation(make_config(), QLECProtocol(), telemetry=tel)
        snap = tel.snapshot()
        prof = [k for k in snap if k.startswith("prof/kernels/")]
        assert prof, "no kernel counters collected"
        assert any(k.startswith("time/kernel/") for k in snap)
        # Profiling must not perturb the simulation.
        plain = run_simulation(make_config(), QLECProtocol())
        assert result.total_energy == plain.total_energy
        assert result.packets == plain.packets

    def test_default_telemetry_does_not_profile(self):
        tel = Telemetry()
        run_simulation(make_config(), QLECProtocol(), telemetry=tel)
        assert not any(
            k.startswith("prof/kernels/") for k in tel.snapshot()
        )

    def test_deterministic_view_keeps_prof_kernels(self):
        tel = Telemetry(profile_kernels=True)
        run_simulation(make_config(), QLECProtocol(), telemetry=tel)
        view = deterministic_view(tel.snapshot())
        assert any(k.startswith("prof/kernels/") for k in view)
        assert not any(
            k.startswith(("time/", "mem/", "prof/rss")) for k in view
        )

    def test_prof_counters_deterministic_across_runs(self):
        views = []
        for _ in range(2):
            tel = Telemetry(profile_kernels=True)
            run_simulation(make_config(), QLECProtocol(), telemetry=tel)
            views.append(deterministic_view(tel.snapshot()))
        assert views[0] == views[1]
