"""Graceful-degradation paths, exercised regardless of the host.

The numba dependency is faked absent (or present) by monkeypatching
the single capability probe, ``numba_version`` — the seam lives in two
module namespaces (the backend module and the registry's probe
closure), so both are patched.  These tests must pass identically on
hosts with and without numba installed.
"""

import warnings

import pytest

from repro.kernels import (
    BackendUnavailableError,
    available_backends,
    backend_available,
    backend_versions,
    get_backend,
    resolve_backend,
    resolve_backend_name,
)
from repro.kernels import numba_backend as numba_backend_mod
from repro.kernels import registry as registry_mod


def _force_numba(monkeypatch, registry, version):
    """Pretend numba_version() returns ``version`` everywhere."""
    monkeypatch.setattr(numba_backend_mod, "numba_version", lambda: version)
    monkeypatch.setattr(registry_mod, "numba_version", lambda: version)
    for tier in ("bitwise", "statistical"):
        registry._INSTANCES.pop(("numba", tier), None)


@pytest.fixture
def no_numba(monkeypatch, clean_registry):
    _force_numba(monkeypatch, clean_registry, None)
    clean_registry._warned_fallback = False
    return clean_registry


@pytest.fixture
def fake_numba(monkeypatch, clean_registry):
    _force_numba(monkeypatch, clean_registry, "99.0-fake")
    return clean_registry


class TestNumbaAbsent:
    def test_explicit_numba_fails_loudly(self, no_numba):
        with pytest.raises(BackendUnavailableError, match="numba"):
            get_backend("numba")
        with pytest.raises(BackendUnavailableError, match="--backend numpy"):
            resolve_backend("numba")

    def test_auto_falls_back_to_numpy_with_warning(self, no_numba):
        with pytest.warns(RuntimeWarning, match="numpy reference"):
            backend = resolve_backend("auto")
        assert backend.name == "numpy"

    def test_fallback_warns_once_per_process(self, no_numba):
        with pytest.warns(RuntimeWarning):
            resolve_backend("auto")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            assert resolve_backend("auto").name == "numpy"

    def test_reset_hook_rearms_the_warning(self, no_numba):
        """``_reset_for_tests`` is the supported way to re-arm the
        once-per-process latch — suites must not poke the module
        global directly."""
        with pytest.warns(RuntimeWarning):
            resolve_backend("auto")
        registry_mod._reset_for_tests()
        with pytest.warns(RuntimeWarning, match="numpy reference"):
            resolve_backend("auto")

    def test_availability_reporting(self, no_numba):
        assert not backend_available("numba")
        assert "numba" not in available_backends()
        assert resolve_backend_name("auto") == "numpy"
        assert backend_versions()["numba"] is None

    def test_engine_auto_runs_on_numpy(self, no_numba):
        from repro.analysis import PROTOCOLS
        from repro.config import paper_config
        from repro.simulation.engine import SimulationEngine

        with pytest.warns(RuntimeWarning):
            engine = SimulationEngine(
                paper_config(seed=0, rounds=1), PROTOCOLS["direct"]()
            )
        assert engine.kernels.name == "numpy"
        engine.run()

    def test_cli_explicit_numba_exits_with_clear_error(self, no_numba, capsys):
        from repro.cli import main

        rc = main(["scenario", "table2", "--backend", "numba"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "numba" in err
        assert "--backend numpy" in err


class TestNumbaFakedPresent:
    def test_auto_resolves_to_numba_name(self, fake_numba):
        # Name resolution never constructs, so a faked probe is enough.
        assert resolve_backend_name("auto") == "numba"
        assert backend_available("numba")
        assert "numba" in available_backends()
        assert backend_versions()["numba"] == "99.0-fake"
