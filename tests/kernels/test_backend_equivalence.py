"""Bit-equivalence of every non-reference backend against numpy.

This is the enforcement arm of the equivalence policy in
``repro.kernels.base``: per-kernel randomized property tests
(hypothesis) plus engine-level golden-path runs, all asserting
**bitwise** equality — no tolerances.  The whole module skips with a
reason when numba is not installed; the CI numba leg runs it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import available_backends, get_backend

pytestmark = pytest.mark.skipif(
    "numba" not in available_backends(),
    reason="numba not installed — the equivalence suite runs on the CI "
    "numba leg (pip install numba)",
)

SEEDS = st.integers(min_value=0, max_value=10_000)


@pytest.fixture(scope="module")
def backends():
    return get_backend("numpy"), get_backend("numba")


class TestKernelEquivalence:
    @given(seed=SEEDS, n=st.integers(1, 40), dup=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_grouped_discharge_bitwise(self, backends, seed, n, dup):
        ref, jit = backends
        rng = np.random.default_rng(seed)
        n_nodes = 12
        residual = rng.uniform(0.0, 0.3, n_nodes)
        alive = rng.uniform(0, 1, n_nodes) > 0.2
        hi = 4 if dup else n_nodes  # force duplicate folding sometimes
        idx = rng.integers(0, hi, n)
        amounts = rng.uniform(0.0, 0.08, n)
        death_line = 0.01

        r1, a1 = residual.copy(), alive.copy()
        r2, a2 = residual.copy(), alive.copy()
        d1 = ref.grouped_discharge(r1, a1, idx, amounts, death_line)
        d2 = jit.grouped_discharge(r2, a2, idx, amounts, death_line)
        np.testing.assert_array_equal(d1, d2)
        np.testing.assert_array_equal(r1, r2)
        np.testing.assert_array_equal(a1, a2)

    @given(seed=SEEDS, n=st.integers(1, 50))
    @settings(max_examples=50, deadline=None)
    def test_ewma_fold_shared_bitwise(self, backends, seed, n):
        ref, jit = backends
        rng = np.random.default_rng(seed)
        alpha = float(rng.uniform(0.05, 1.0))
        row = rng.uniform(0, 1, 9)
        targets = rng.integers(0, 9, n)
        obs = rng.integers(0, 2, n).astype(np.float64)
        table = np.power(1.0 - alpha, np.arange(n + 1))

        r1, r2 = row.copy(), row.copy()
        ref.ewma_fold_shared(r1, targets, obs, alpha, table)
        jit.ewma_fold_shared(r2, targets, obs, alpha, table)
        np.testing.assert_array_equal(r1, r2)

    @given(seed=SEEDS, n=st.integers(1, 50), dup=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_ewma_fold_pairs_bitwise(self, backends, seed, n, dup):
        ref, jit = backends
        rng = np.random.default_rng(seed)
        alpha = float(rng.uniform(0.05, 1.0))
        est = rng.uniform(0, 1, (7, 8))
        hi = 3 if dup else 7  # exercise both the fast path and the fold
        nodes = rng.integers(0, hi, n)
        targets = rng.integers(0, 8 if not dup else 2, n)
        obs = rng.integers(0, 2, n).astype(np.float64)
        table = np.power(1.0 - alpha, np.arange(n + 1))

        e1, e2 = est.copy(), est.copy()
        ref.ewma_fold_pairs(e1, nodes, targets, obs, alpha, table)
        jit.ewma_fold_pairs(e2, nodes, targets, obs, alpha, table)
        np.testing.assert_array_equal(e1, e2)

    @given(seed=SEEDS, n=st.integers(1, 30), m=st.integers(1, 12))
    @settings(max_examples=50, deadline=None)
    def test_expected_q_bitwise(self, backends, seed, n, m):
        ref, jit = backends
        rng = np.random.default_rng(seed)
        p = rng.uniform(0, 1, (n, m))
        y = rng.uniform(0, 5, (n, m))
        x_src = rng.uniform(0, 1, n)
        x_dst = rng.uniform(0, 1, m)
        is_bs = rng.uniform(0, 1, m) > 0.7
        v_t = rng.normal(0, 1, m)
        v_s = rng.normal(0, 1, n)
        params = dict(
            g=float(rng.uniform(0, 0.5)),
            alpha1=float(rng.uniform(0, 1)),
            alpha2=float(rng.uniform(0, 1)),
            beta1=float(rng.uniform(0, 1)),
            beta2=float(rng.uniform(0, 1)),
            bs_penalty=float(rng.uniform(0, 1)),
            gamma=float(rng.uniform(0.5, 1.0)),
        )
        q1, v1 = ref.expected_q(p, y, x_src, x_dst, is_bs, v_t, v_s, **params)
        q2, v2 = jit.expected_q(p, y, x_src, x_dst, is_bs, v_t, v_s, **params)
        np.testing.assert_array_equal(q1, q2)
        np.testing.assert_array_equal(v1, v2)

    def test_reference_pinned_methods_are_shared_code(self, backends):
        """Distances and the Bernoulli compare must be the *same numpy
        code*, not a reimplementation (equivalence policy rule 2)."""
        ref, jit = backends
        assert type(jit).distance_block is type(ref).distance_block
        assert type(jit).distance_pairs is type(ref).distance_pairs
        assert type(jit).bernoulli is type(ref).bernoulli


class TestEngineEquivalence:
    @pytest.mark.parametrize("protocol", ["qlec", "direct", "leach"])
    def test_full_run_bitwise_identical(self, protocol):
        """Five Table-2 rounds on each backend: every per-round metric
        (including float energy totals) must match exactly."""
        from repro.analysis import PROTOCOLS
        from repro.config import paper_config
        from repro.simulation.engine import SimulationEngine

        def rounds(backend):
            cfg = paper_config(seed=0, rounds=5)
            result = SimulationEngine(
                cfg, PROTOCOLS[protocol](), backend=backend
            ).run()
            return [
                (
                    rs.round_index, rs.n_heads, rs.n_alive,
                    rs.energy_consumed, rs.packets.generated,
                    rs.packets.delivered, rs.packets.dropped_channel,
                    rs.packets.dropped_queue, rs.packets.total_latency_slots,
                )
                for rs in result.per_round
            ]

        assert rounds("numpy") == rounds("numba")

    def test_estimator_shared_mode_bitwise_identical(self):
        from repro.analysis import PROTOCOLS
        from repro.config import paper_config
        from repro.simulation.engine import SimulationEngine

        def final_state(backend):
            cfg = paper_config(seed=1, rounds=3)
            cfg = cfg.replace(estimator_shared=True)
            engine = SimulationEngine(
                cfg, PROTOCOLS["qlec"](), backend=backend
            )
            engine.run()
            return (
                engine.state.ledger.residual.copy(),
                np.asarray(engine.state.link_estimator.estimates).copy(),
            )

        res1, est1 = final_state("numpy")
        res2, est2 = final_state("numba")
        np.testing.assert_array_equal(res1, res2)
        np.testing.assert_array_equal(est1, est2)
