"""Shared registry-isolation fixture for the kernels suite.

Registry tests register throwaway backends and the degradation tests
monkeypatch capability probes; both must leave the process-wide
registry exactly as they found it or later tests (and the engine's
``auto`` resolution) would see phantom backends.
"""

import pytest

from repro.kernels import registry


@pytest.fixture
def clean_registry():
    """Snapshot and restore the backend registry around a test."""
    factories = dict(registry._FACTORIES)
    probes = dict(registry._PROBES)
    instances = dict(registry._INSTANCES)
    warned = registry._warned_fallback
    try:
        yield registry
    finally:
        registry._FACTORIES.clear()
        registry._FACTORIES.update(factories)
        registry._PROBES.clear()
        registry._PROBES.update(probes)
        registry._INSTANCES.clear()
        registry._INSTANCES.update(instances)
        registry._warned_fallback = warned
