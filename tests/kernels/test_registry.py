"""Registry semantics: registration, lookup, resolution, versions."""

import numpy as np
import pytest

from repro.kernels import (
    BACKEND_CHOICES,
    EQUIVALENCE_CHOICES,
    EquivalenceError,
    KernelBackend,
    NumpyBackend,
    available_backends,
    backend_available,
    backend_names,
    backend_versions,
    default_backend,
    get_backend,
    register_backend,
    resolve_backend,
    resolve_backend_name,
)


class TestLookup:
    def test_builtin_backends_registered(self):
        names = backend_names()
        assert "numpy" in names
        assert "numba" in names

    def test_choices_cover_builtins_plus_auto(self):
        assert BACKEND_CHOICES == ("auto", "numpy", "numba")

    def test_numpy_always_available(self):
        assert backend_available("numpy")
        assert "numpy" in available_backends()

    def test_unknown_name_unavailable_not_error(self):
        assert not backend_available("tpu")

    def test_get_backend_is_singleton(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert default_backend() is get_backend("numpy")

    def test_get_backend_unknown_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown kernel backend 'tpu'"):
            get_backend("tpu")


class TestRegistration:
    def test_register_and_resolve_custom_backend(self, clean_registry):
        class EchoBackend(NumpyBackend):
            name = "echo"

        register_backend("echo", EchoBackend, probe=lambda: True)
        assert "echo" in backend_names()
        assert backend_available("echo")
        assert isinstance(get_backend("echo"), EchoBackend)
        assert resolve_backend_name("echo") == "echo"
        assert resolve_backend("echo").name == "echo"

    def test_register_rejects_auto_and_empty(self, clean_registry):
        with pytest.raises(ValueError):
            register_backend("auto", NumpyBackend)
        with pytest.raises(ValueError):
            register_backend("", NumpyBackend)

    def test_duplicate_requires_override(self, clean_registry):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", NumpyBackend)
        register_backend("numpy", NumpyBackend, override=True)
        assert get_backend("numpy").name == "numpy"

    def test_probeless_backend_probed_by_construction(self, clean_registry):
        class Broken(NumpyBackend):
            name = "broken"

            def __init__(self):
                from repro.kernels import BackendUnavailableError

                raise BackendUnavailableError("nope")

        register_backend("broken", Broken)
        assert not backend_available("broken")
        assert "broken" not in available_backends()


class TestResolution:
    def test_instance_passes_through(self):
        inst = NumpyBackend()
        assert resolve_backend(inst) is inst
        assert resolve_backend_name(inst) == "numpy"

    def test_non_string_selector_rejected(self):
        with pytest.raises(TypeError):
            resolve_backend(42)
        with pytest.raises(TypeError):
            resolve_backend_name(42)

    def test_resolved_name_never_auto(self):
        assert resolve_backend_name("auto") in ("numpy", "numba")

    def test_name_resolution_matches_instance_resolution(self):
        assert (
            resolve_backend("auto", warn_fallback=False).name
            == resolve_backend_name("auto")
        )

    def test_unknown_selector_name_raises(self):
        with pytest.raises(KeyError):
            resolve_backend_name("tpu")


class TestEquivalenceTiers:
    def test_choices(self):
        assert EQUIVALENCE_CHOICES == ("bitwise", "statistical")

    def test_singletons_are_per_tier(self):
        bit = get_backend("numpy", "bitwise")
        stat = get_backend("numpy", "statistical")
        assert bit is not stat
        assert bit is get_backend("numpy")  # bitwise is the default
        assert stat is get_backend("numpy", "statistical")
        assert bit.equivalence == "bitwise"
        assert stat.equivalence == "statistical"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="equivalence"):
            get_backend("numpy", "sloppy")
        with pytest.raises(ValueError, match="equivalence"):
            resolve_backend("numpy", equivalence="sloppy")

    def test_resolution_carries_the_tier(self):
        assert resolve_backend(
            "numpy", equivalence="statistical"
        ).equivalence == "statistical"

    def test_bitwise_instance_serves_either_tier(self):
        bit = NumpyBackend()
        assert resolve_backend(bit, equivalence="statistical") is bit

    def test_statistical_instance_rejected_by_bitwise_resolution(self):
        stat = NumpyBackend(equivalence="statistical")
        with pytest.raises(EquivalenceError, match="bitwise"):
            resolve_backend(stat)
        assert resolve_backend(stat, equivalence="statistical") is stat

    def test_tier_unaware_factory_serves_both_tiers(self, clean_registry):
        """A zero-argument third-party factory yields bitwise instances;
        both tiers resolve to them (bitwise trivially satisfies the
        statistical contract)."""
        built = []

        def factory():
            built.append(1)
            return NumpyBackend()

        register_backend("legacy", factory, probe=lambda: True)
        inst = get_backend("legacy", "statistical")
        assert inst.equivalence == "bitwise"
        assert get_backend("legacy", "bitwise").equivalence == "bitwise"
        assert len(built) == 2  # cached per (name, tier)


class TestVersions:
    def test_numpy_version_recorded(self):
        versions = backend_versions()
        assert versions["numpy"] == np.__version__

    def test_numba_key_present_even_when_absent(self):
        versions = backend_versions()
        assert "numba" in versions  # None marks the missing optional dep


class TestContract:
    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            KernelBackend()

    def test_name_is_concrete_on_instances(self):
        assert get_backend("numpy").name == "numpy"
