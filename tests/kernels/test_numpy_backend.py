"""Unit tests of the numpy reference kernels against inline oracles.

The reference backend *defines* correct behaviour for every other
backend, so these tests pin it against independent formulations:
sequential scalar loops for the grouped kernels, direct numpy
composition for the Q combine, and the ufunc identity behind the
precomputed decay table.
"""

import numpy as np

from repro.kernels import NumpyBackend

BK = NumpyBackend()
RNG = np.random.default_rng(1234)


class TestGeometry:
    def test_distance_block_matches_norm(self):
        src = RNG.uniform(0, 200, (7, 3))
        dst = RNG.uniform(0, 200, (5, 3))
        got = BK.distance_block(src, dst)
        want = np.linalg.norm(src[:, None, :] - dst[None, :, :], axis=2)
        assert got.shape == (7, 5)
        np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_distance_pairs_matches_norm(self):
        src = RNG.uniform(0, 200, (9, 3))
        dst = RNG.uniform(0, 200, (9, 3))
        got = BK.distance_pairs(src, dst)
        np.testing.assert_allclose(
            got, np.linalg.norm(src - dst, axis=1), rtol=1e-12
        )

    def test_distance_block_row_equals_pairs(self):
        """The block and pair kernels share the einsum pipeline, so a
        one-row block equals the pairwise call bitwise."""
        src = RNG.uniform(0, 200, (1, 3))
        dst = RNG.uniform(0, 200, (6, 3))
        block = BK.distance_block(src, dst)[0]
        pairs = BK.distance_pairs(np.broadcast_to(src, (6, 3)).copy(), dst)
        np.testing.assert_array_equal(block, pairs)


class TestBernoulli:
    def test_strict_compare(self):
        p = np.array([0.0, 0.5, 0.5, 1.0])
        u = np.array([0.0, 0.4999, 0.5, 0.999])
        np.testing.assert_array_equal(
            BK.bernoulli(p, u), np.array([False, True, False, True])
        )


class TestGroupedDischarge:
    def _sequential(self, residual, alive, idx, amounts, death_line):
        """Scalar oracle: fold duplicates in input order, then charge."""
        sums: dict[int, float] = {}
        for i, a in zip(idx, amounts):
            sums[int(i)] = sums.get(int(i), 0.0) + float(a)
        deltas = []
        for node in sorted(sums):
            if not alive[node]:
                continue
            before = residual[node]
            after = max(before - sums[node], 0.0)
            residual[node] = after
            deltas.append(before - after)
            if after <= death_line:
                alive[node] = False
        return np.array(deltas, dtype=np.float64)

    def test_matches_sequential_oracle(self):
        residual = RNG.uniform(0.01, 0.3, 20)
        alive = np.ones(20, dtype=bool)
        alive[[3, 7]] = False
        idx = RNG.integers(0, 20, 60)
        amounts = RNG.uniform(0.0, 0.05, 60)

        r_ref, a_ref = residual.copy(), alive.copy()
        want = self._sequential(r_ref, a_ref, idx, amounts, 0.0)

        r_got, a_got = residual.copy(), alive.copy()
        got = BK.grouped_discharge(r_got, a_got, idx, amounts, 0.0)

        np.testing.assert_allclose(got, want, rtol=1e-12)
        np.testing.assert_allclose(r_got, r_ref, rtol=1e-12)
        np.testing.assert_array_equal(a_got, a_ref)

    def test_dead_nodes_not_charged(self):
        residual = np.array([0.5, 0.5])
        alive = np.array([True, False])
        delta = BK.grouped_discharge(
            residual, alive, np.array([0, 1]), np.array([0.1, 0.1]), 0.0
        )
        assert delta.size == 1
        assert residual[1] == 0.5

    def test_floor_at_zero_and_death_marking(self):
        residual = np.array([0.05, 0.2])
        alive = np.array([True, True])
        delta = BK.grouped_discharge(
            residual, alive, np.array([0, 1]), np.array([0.1, 0.1]), 0.05
        )
        # Node 0 floors at 0 and only 0.05 J was actually drawn.
        np.testing.assert_allclose(delta, [0.05, 0.1])
        assert residual[0] == 0.0
        assert not alive[0]  # 0.0 <= death_line: newly dead
        assert alive[1]  # 0.2 - 0.1 = 0.1 > 0.05: survives


class TestEwmaFolds:
    def _table(self, alpha, size):
        return np.power(1.0 - alpha, np.arange(size))

    def _sequential_shared(self, row, targets, obs, alpha):
        for t, o in zip(targets, obs):
            row[t] += alpha * (o - row[t])

    def test_pow_table_identity(self):
        """The precomputed table is bitwise the ufunc power on integer
        exponents — the identity that lets compiled backends read the
        table instead of calling pow."""
        for alpha in (0.05, 0.2, 0.77):
            table = self._table(alpha, 64)
            np.testing.assert_array_equal(
                table, (1.0 - alpha) ** np.arange(64)
            )

    def test_shared_fold_matches_sequential(self):
        alpha = 0.2
        row_ref = RNG.uniform(0, 1, 8)
        row_got = row_ref.copy()
        targets = np.array([2, 5, 2, 2, 7, 5], dtype=np.intp)
        obs = np.array([1.0, 0.0, 1.0, 0.0, 1.0, 1.0])
        self._sequential_shared(row_ref, targets, obs, alpha)
        BK.ewma_fold_shared(
            row_got, targets, obs, alpha, self._table(alpha, targets.size + 1)
        )
        np.testing.assert_allclose(row_got, row_ref, rtol=1e-12)
        assert ((row_got >= 0.0) & (row_got <= 1.0)).all()

    def test_pairs_unique_fast_path_is_single_step(self):
        alpha = 0.3
        est = RNG.uniform(0, 1, (4, 5))
        nodes = np.array([0, 1, 3], dtype=np.intp)
        targets = np.array([4, 0, 2], dtype=np.intp)
        obs = np.array([1.0, 0.0, 1.0])
        want = est.copy()
        want[nodes, targets] += alpha * (obs - want[nodes, targets])
        BK.ewma_fold_pairs(
            est, nodes, targets, obs, alpha, self._table(alpha, 4)
        )
        np.testing.assert_array_equal(est, want)

    def test_pairs_fold_matches_sequential(self):
        alpha = 0.25
        est_ref = RNG.uniform(0, 1, (3, 4))
        est_got = est_ref.copy()
        nodes = np.array([0, 0, 2, 0], dtype=np.intp)
        targets = np.array([1, 1, 3, 1], dtype=np.intp)
        obs = np.array([1.0, 0.0, 1.0, 1.0])
        for n, t, o in zip(nodes, targets, obs):
            est_ref[n, t] += alpha * (o - est_ref[n, t])
        BK.ewma_fold_pairs(
            est_got, nodes, targets, obs, alpha,
            self._table(alpha, nodes.size + 1),
        )
        np.testing.assert_allclose(est_got, est_ref, rtol=1e-12)


class TestExpectedQ:
    def test_matches_inline_composition(self):
        n, m = 6, 4
        p = RNG.uniform(0, 1, (n, m))
        y = RNG.uniform(0, 3, (n, m))
        x_src = RNG.uniform(0, 1, n)
        x_dst = RNG.uniform(0, 1, m)
        is_bs = np.zeros(m, dtype=bool)
        is_bs[-1] = True
        v_t = RNG.normal(0, 1, m)
        v_s = RNG.normal(0, 1, n)
        params = dict(
            g=0.1, alpha1=0.6, alpha2=0.4, beta1=0.5, beta2=0.5,
            bs_penalty=0.3, gamma=0.9,
        )
        q, v_new = BK.expected_q(p, y, x_src, x_dst, is_bs, v_t, v_s, **params)

        r_s = (
            -params["g"]
            + params["alpha1"] * (x_src[:, None] + x_dst)
            - params["alpha2"] * y
        ) - np.where(is_bs, params["bs_penalty"], 0.0)
        r_f = -params["g"] + params["beta1"] * x_src[:, None] - params["beta2"] * y
        r_t = p * r_s + (1.0 - p) * r_f
        want = r_t + params["gamma"] * (p * v_t + (1.0 - p) * v_s[:, None])
        np.testing.assert_array_equal(q, want)
        np.testing.assert_array_equal(v_new, want.max(axis=1))

    def test_v_new_is_row_max(self):
        n, m = 3, 5
        q, v_new = BK.expected_q(
            RNG.uniform(0, 1, (n, m)), RNG.uniform(0, 2, (n, m)),
            RNG.uniform(0, 1, n), RNG.uniform(0, 1, m),
            np.zeros(m, dtype=bool), RNG.normal(0, 1, m), RNG.normal(0, 1, n),
            g=0.1, alpha1=0.6, alpha2=0.4, beta1=0.5, beta2=0.5,
            bs_penalty=0.3, gamma=0.95,
        )
        np.testing.assert_array_equal(v_new, q.max(axis=1))
