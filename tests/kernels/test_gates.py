"""The statistical tier's distributional gate and its tolerance schema."""

import math

import numpy as np
import pytest

from repro.kernels import (
    GATED_METRICS,
    METRIC_TOLERANCES,
    GateMetric,
    run_statistical_gate,
)
from repro.kernels.gates import _gate_metric


class TestToleranceSchema:
    def test_every_gated_metric_declares_abs_and_rel(self):
        assert GATED_METRICS == tuple(METRIC_TOLERANCES)
        for metric, tol in METRIC_TOLERANCES.items():
            assert set(tol) == {"abs", "rel"}, metric
            assert tol["abs"] >= 0.0 and tol["rel"] >= 0.0, metric
            assert tol["abs"] > 0.0 or tol["rel"] > 0.0, (
                f"{metric}: a zero-allowance gate is a bitwise test in disguise"
            )

    def test_headline_metrics_are_gated(self):
        assert "pdr" in METRIC_TOLERANCES
        assert "energy_J" in METRIC_TOLERANCES
        assert "latency_slots" in METRIC_TOLERANCES


class TestGateMetric:
    def test_within_allowance_passes(self):
        v = _gate_metric("pdr", np.array([0.90, 0.92]), np.array([0.91, 0.92]))
        assert isinstance(v, GateMetric)
        assert v.passed and v.delta <= v.tolerance

    def test_outside_allowance_fails(self):
        v = _gate_metric("pdr", np.array([0.90, 0.92]), np.array([0.70, 0.72]))
        assert not v.passed
        assert v.delta == pytest.approx(0.20)

    def test_relative_allowance_scales_with_reference(self):
        ref = np.array([100.0, 102.0])
        v = _gate_metric("energy_J", ref, ref * 1.01)  # within 2 % rel
        assert v.passed
        v = _gate_metric("energy_J", ref, ref * 1.05)  # outside
        assert not v.passed

    def test_both_nan_means_agree_in_kind(self):
        nan2 = np.array([float("nan"), float("nan")])
        v = _gate_metric("latency_slots", nan2, nan2)
        assert v.passed and math.isnan(v.ref_mean)

    def test_one_sided_nan_fails(self):
        nan2 = np.array([float("nan"), float("nan")])
        v = _gate_metric("latency_slots", np.array([2.0, 2.0]), nan2)
        assert not v.passed

    def test_partial_nan_compares_defined_entries(self):
        ref = np.array([2.0, float("nan")])
        cand = np.array([2.0, float("nan")])
        v = _gate_metric("latency_slots", ref, cand)
        assert v.passed and v.ref_mean == 2.0

    def test_unknown_metric_has_no_tolerance(self):
        with pytest.raises(KeyError):
            _gate_metric("nonsense", np.array([1.0]), np.array([1.0]))


class TestRunStatisticalGate:
    def test_numpy_statistical_passes_small_batch(self):
        """The GEMM distance path must sit inside every declared
        allowance on a small but real seed batch."""
        report = run_statistical_gate(
            backend="numpy", seeds=(0, 1), rounds=2,
        )
        assert report.passed, report.failures
        assert report.n_seeds == 2
        (cell,) = report.cells
        assert cell["protocol"] == "qlec"
        assert cell["resolved_backend"] == "numpy"
        assert [m["metric"] for m in cell["metrics"]] == list(GATED_METRICS)

    def test_report_round_trips_to_dict(self):
        report = run_statistical_gate(
            backend="numpy", seeds=(0,), rounds=1, metrics=("pdr",),
        )
        payload = report.to_dict()
        assert payload["kind"] == "statistical-gate"
        assert payload["passed"] == report.passed
        assert payload["n_seeds"] == 1

    def test_ungated_metric_rejected_up_front(self):
        with pytest.raises(KeyError, match="no declared tolerance"):
            run_statistical_gate(metrics=("pdr", "nonsense"))
