"""Blocked distance path: bit-identity to the unblocked kernel.

``distance_block_blocked`` is a *memory* knob — it chunks the sender
axis so the transient block never exceeds the declared MiB budget —
and must never be a *numeric* one: every chunking (including budgets
that do not divide the sender count, degenerate one-row blocks, and
no budget at all) has to reproduce the unblocked kernel bit for bit.
"""

import numpy as np
import pytest

from repro.kernels import available_backends, get_backend

#: Budgets chosen so the row chunk lands on 1, a non-divisor, a
#: divisor, larger-than-n, and the unblocked passthrough.
BUDGETS = (1e-7, 1e-4, 1e-3, 64.0, None)


@pytest.fixture(params=sorted(available_backends()))
def backend(request):
    return get_backend(request.param)


@pytest.fixture
def cloud(rng):
    return rng.random((57, 3)) * 200.0


@pytest.mark.parametrize("budget", BUDGETS)
def test_blocked_matches_unblocked_bitwise(backend, cloud, budget):
    src, dst = cloud, cloud[:11]
    ref = backend.distance_block(src, dst)
    out = backend.distance_block_blocked(src, dst, budget)
    np.testing.assert_array_equal(out, ref)
    assert out.dtype == np.float64


@pytest.mark.parametrize("budget", BUDGETS)
@pytest.mark.parametrize("shape", [(0, 3), (1, 3)])
def test_degenerate_sender_sets(backend, cloud, budget, shape):
    src = np.zeros(shape)
    out = backend.distance_block_blocked(src, cloud[:5], budget)
    assert out.shape == (shape[0], 5)
    np.testing.assert_array_equal(out, backend.distance_block(src, cloud[:5]))


@pytest.mark.parametrize("budget", BUDGETS)
def test_empty_target_set(backend, cloud, budget):
    out = backend.distance_block_blocked(cloud, cloud[:0], budget)
    assert out.shape == (57, 0)


@pytest.mark.parametrize("budget", (1e-7, 1e-3, None))
def test_strided_views_match_contiguous(backend, cloud, budget):
    """Fancy-indexed and sliced (non-contiguous) inputs — the shapes the
    engine actually passes — must not change the bits."""
    src_view = cloud[::2]
    dst_view = cloud[1::3]
    assert not src_view.flags.c_contiguous
    ref = backend.distance_block(
        np.ascontiguousarray(src_view), np.ascontiguousarray(dst_view)
    )
    out = backend.distance_block_blocked(src_view, dst_view, budget)
    np.testing.assert_array_equal(out, ref)


def test_single_pair(backend):
    a = np.array([[0.0, 0.0, 0.0]])
    b = np.array([[3.0, 4.0, 12.0]])
    out = backend.distance_block_blocked(a, b, 1e-7)
    np.testing.assert_array_equal(out, np.array([[13.0]]))


def test_one_row_chunks_cover_every_sender(backend, cloud):
    """A budget below one row's footprint degrades to row-at-a-time
    chunking (never zero-row starvation) and still covers everything."""
    dst = cloud[:7]
    out = backend.distance_block_blocked(cloud, dst, 1e-9)
    np.testing.assert_array_equal(out, backend.distance_block(cloud, dst))
