"""Tests for the large-scale dataset substrate."""

import numpy as np
import pytest

from repro.datasets.power_plants import (
    CHINA_BBOX,
    PowerPlantDataset,
    load_power_plants,
    synthetic_china_plants,
)


class TestSyntheticGenerator:
    def test_count_matches_paper(self):
        ds = synthetic_china_plants(rng=0)
        assert ds.n == 2896

    def test_positions_inside_bbox(self):
        ds = synthetic_china_plants(n=500, rng=1)
        lon_min, lon_max, lat_min, lat_max = CHINA_BBOX
        assert np.all((ds.lon >= lon_min) & (ds.lon <= lon_max))
        assert np.all((ds.lat >= lat_min) & (ds.lat <= lat_max))

    def test_capacities_heavy_tailed(self):
        ds = synthetic_china_plants(n=2000, rng=2)
        assert np.all(ds.capacity_mw > 0)
        assert float(np.median(ds.capacity_mw)) < float(ds.capacity_mw.mean())

    def test_east_coast_denser_than_far_west(self):
        ds = synthetic_china_plants(n=2000, rng=3)
        east = (ds.lon > 110).mean()
        west = (ds.lon < 95).mean()
        assert east > 2 * west

    def test_heights_bounded(self):
        ds = synthetic_china_plants(n=300, rng=4, max_height=5.0)
        assert np.all((ds.height >= 0) & (ds.height <= 5.0))

    def test_deterministic(self):
        a = synthetic_china_plants(n=100, rng=9)
        b = synthetic_china_plants(n=100, rng=9)
        np.testing.assert_array_equal(a.lon, b.lon)
        np.testing.assert_array_equal(a.capacity_mw, b.capacity_mw)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            synthetic_china_plants(n=0)


class TestDatasetMethods:
    def make(self):
        return synthetic_china_plants(n=400, rng=5)

    def test_projection_shape_and_origin(self):
        pos = self.make().projected_positions()
        assert pos.shape == (400, 3)
        assert pos[:, 0].min() == pytest.approx(0.0)
        assert pos[:, 1].min() == pytest.approx(0.0)

    def test_initial_energies_log_mapping(self):
        ds = self.make()
        e = ds.initial_energies(0.1, 1.0)
        assert e.min() == pytest.approx(0.1)
        assert e.max() == pytest.approx(1.0)
        # Monotone in capacity.
        order = np.argsort(ds.capacity_mw)
        assert np.all(np.diff(e[order]) >= -1e-12)

    def test_initial_energies_validation(self):
        with pytest.raises(ValueError):
            self.make().initial_energies(1.0, 0.5)

    def test_to_network_rescales(self):
        nodes, bs, energies = self.make().to_network(side=250.0)
        span = nodes.positions.max(axis=0) - nodes.positions.min(axis=0)
        assert span.max() == pytest.approx(250.0, rel=1e-6)
        assert energies.shape == (400,)
        # BS inside the footprint.
        assert np.all(np.asarray(bs.position) >= nodes.positions.min(axis=0) - 1e-9)
        assert np.all(np.asarray(bs.position) <= nodes.positions.max(axis=0) + 1e-9)

    def test_to_network_rejects_bad_side(self):
        with pytest.raises(ValueError):
            self.make().to_network(side=0.0)

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PowerPlantDataset(
                lon=np.zeros(3), lat=np.zeros(3),
                capacity_mw=np.ones(2), height=np.zeros(3),
            )


class TestLoader:
    def test_missing_path_falls_back(self):
        ds = load_power_plants("/nonexistent/path.csv", n_fallback=50, rng=0)
        assert ds.n == 50

    def test_none_path_falls_back(self):
        ds = load_power_plants(None, n_fallback=77, rng=0)
        assert ds.n == 77

    def test_reads_real_csv(self, tmp_path):
        csv = tmp_path / "gppd.csv"
        csv.write_text(
            "country,latitude,longitude,capacity_mw\n"
            "CHN,31.2,121.5,500\n"
            "CHN,39.9,116.4,1200\n"
            "USA,40.0,-75.0,900\n"
            "CHN,23.1,113.3,notanumber\n"
        )
        ds = load_power_plants(str(csv), rng=1)
        assert ds.n == 2  # two valid CHN rows
        np.testing.assert_allclose(sorted(ds.capacity_mw), [500.0, 1200.0])

    def test_csv_with_no_matching_country_falls_back(self, tmp_path):
        csv = tmp_path / "gppd.csv"
        csv.write_text("country,latitude,longitude,capacity_mw\nUSA,1,2,3\n")
        ds = load_power_plants(str(csv), n_fallback=10, rng=0)
        assert ds.n == 10
