"""Preemptible sweep cells: checkpoint resume through the parallel layer.

Covers the run_cell resume contract (tag derivation, telemetry
carry-over, the resume sidecar), graceful drain of run_shard /
run_scheduled / serve_once, and the chaos headline: a SIGKILLed
scheduler worker whose lease is reclaimed resumes the cell from its
snapshot and re-executes only the rounds after it.
"""

import dataclasses
import json
import os
import signal

import pytest

from repro.analysis.sweep import PROTOCOLS, run_cell
from repro.checkpoint import CheckpointWriter, snapshot_paths
from repro.config import RoutingConfig, paper_config
from repro.kernels import resolve_backend_name
from repro.parallel import (
    DrainFlag,
    SweepSpec,
    load_artifact,
    load_status,
    run_scheduled,
    run_shard,
    shard_status_path,
)
from repro.simulation import SimulationEngine
from repro.telemetry import Telemetry
from repro.telemetry.manifest import config_fingerprint
from repro.telemetry.registry import deterministic_view

#: Directory holding the kill-once marker of the chaos test (workers
#: inherit the environment, so the path crosses the fork/spawn).
KILL_DIR_ENV = "REPRO_CKPT_CHAOS_KILL_DIR"


def _cell_config(protocol, lam, seed, rounds, faults=None, routing="direct"):
    """The exact config run_cell builds — the resume tag contract."""
    config = dataclasses.replace(
        paper_config(mean_interarrival=lam, seed=seed, rounds=rounds),
        backend=resolve_backend_name("auto"),
        equivalence="bitwise",
        max_block_mb=None,
        routing=RoutingConfig(kind=routing),
    )
    if faults:
        from repro.faults import build_fault_plan

        config = config.replace(faults=build_fault_plan(faults, config))
    return config


def _seed_snapshot(
    checkpoint_dir,
    *,
    protocol="qlec",
    lam=4.0,
    seed=0,
    rounds=6,
    upto=3,
    telemetry=False,
    faults=None,
    routing="direct",
):
    """Simulate an interrupted run_cell attempt: run ``upto`` rounds of
    the identical cell and leave its snapshot under the run_cell tag."""
    config = _cell_config(protocol, lam, seed, rounds, faults, routing)
    tel = Telemetry() if telemetry else None
    engine = SimulationEngine(config, PROTOCOLS[protocol](), telemetry=tel)
    for _ in range(upto):
        engine.run_round()
    tag = f"{protocol}-{config_fingerprint(config)}"
    CheckpointWriter(checkpoint_dir, tag, every=1).snapshot(engine)
    return tag


def _resume_log(checkpoint_dir, tag):
    path = checkpoint_dir / f"{tag}.resume.jsonl"
    if not path.exists():
        return []
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestRunCellResume:
    def test_resumes_from_seeded_snapshot_bit_identical(self, tmp_path):
        clean = run_cell(
            "qlec", 4.0, 0, rounds=6, telemetry=True,
            faults="ch-kill", routing="tree",
        )
        tag = _seed_snapshot(
            tmp_path, telemetry=True, faults="ch-kill", routing="tree"
        )
        resumed = run_cell(
            "qlec", 4.0, 0, rounds=6, telemetry=True,
            faults="ch-kill", routing="tree",
            checkpoint_every=2, checkpoint_dir=str(tmp_path),
        )
        clean_tel = clean.pop("telemetry")
        resumed_tel = resumed.pop("telemetry")
        assert resumed == clean
        assert deterministic_view(resumed_tel) == deterministic_view(clean_tel)
        log = _resume_log(tmp_path, tag)
        assert len(log) == 1
        assert log[0]["kind"] == "checkpoint-resume"
        assert log[0]["round_index"] == 3  # restored, not recomputed

    def test_mismatched_snapshot_is_ignored(self, tmp_path):
        # A snapshot of a *different* cell (other seed) under its own
        # tag: the resuming cell must not pick it up.
        _seed_snapshot(tmp_path, seed=1)
        clean = run_cell("qlec", 4.0, 0, rounds=6)
        fresh = run_cell(
            "qlec", 4.0, 0, rounds=6,
            checkpoint_every=2, checkpoint_dir=str(tmp_path),
        )
        assert fresh == clean

    def test_no_checkpoint_kwargs_changes_nothing(self, tmp_path):
        assert run_cell("qlec", 4.0, 0, rounds=4) == run_cell(
            "qlec", 4.0, 0, rounds=4,
            checkpoint_every=None, checkpoint_dir=str(tmp_path),
        )
        assert not list(tmp_path.iterdir())  # every=None writes nothing


class TestRunShardDrain:
    SPEC = dict(
        protocols=("qlec", "leach"), lambdas=(4.0,), seeds=(0, 1), rounds=2
    )

    def test_drain_stops_at_cell_boundary_and_resumes(self, tmp_path):
        spec = SweepSpec(**self.SPEC)
        out = tmp_path / "shard.jsonl"
        result = run_shard(
            spec, 1, 1, out, serial=True, stop_requested=lambda: True
        )
        assert 1 <= len(result.executed) < len(spec)
        assert load_status(shard_status_path(out))["state"] == "stopped"

        # Reference artifact from an uninterrupted run.
        ref = tmp_path / "ref.jsonl"
        run_shard(spec, 1, 1, ref, serial=True)

        resumed = run_shard(spec, 1, 1, out, serial=True)
        assert len(resumed.skipped) == len(result.executed)
        assert len(resumed.executed) == len(spec) - len(result.executed)
        assert load_status(shard_status_path(out))["state"] == "complete"
        rows = [r["summary"] for r in load_artifact(out).records
                if r.get("kind") == "cell"]
        ref_rows = [r["summary"] for r in load_artifact(ref).records
                    if r.get("kind") == "cell"]
        assert rows == ref_rows

    def test_unlatched_flag_changes_nothing(self, tmp_path):
        spec = SweepSpec(**self.SPEC)
        flag = DrainFlag()
        result = run_shard(
            spec, 1, 1, tmp_path / "s.jsonl", serial=True,
            stop_requested=flag,
        )
        assert len(result.executed) == len(spec)
        assert (
            load_status(shard_status_path(tmp_path / "s.jsonl"))["state"]
            == "complete"
        )


def _kill_once_cell(*args):
    """Scheduler chaos cell: SIGKILL the worker once, then delegate.

    Module-level so it pickles into spawned workers; the marker file
    makes the kill happen exactly once across respawns."""
    kill_dir = os.environ.get(KILL_DIR_ENV)
    if kill_dir:
        marker = os.path.join(kill_dir, "killed")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
    return run_cell(*args)


class TestSchedulerSnapshotReclaim:
    def test_reclaimed_lease_resumes_from_snapshot(self, tmp_path, monkeypatch):
        """The chaos headline: kill the worker, reclaim the lease, and
        prove via the resume sidecar that the replacement re-executed
        only the rounds after the seeded snapshot."""
        ckpt_dir = tmp_path / "ckpt"
        ckpt_dir.mkdir()
        tag = _seed_snapshot(ckpt_dir, rounds=6, upto=3)
        monkeypatch.setenv(KILL_DIR_ENV, str(tmp_path))

        spec = SweepSpec(protocols=("qlec",), lambdas=(4.0,), seeds=(0,),
                         rounds=6)
        out = tmp_path / "sched.jsonl"
        result = run_scheduled(
            spec, out, num_workers=1, cell_fn=_kill_once_cell,
            checkpoint_every=3, checkpoint_dir=ckpt_dir,
        )
        assert result.ok and result.worker_deaths >= 1
        assert (tmp_path / "killed").exists()

        log = _resume_log(ckpt_dir, tag)
        assert log and log[0]["round_index"] == 3

        clean = run_cell("qlec", 4.0, 0, rounds=6)
        rows = [r["summary"] for r in load_artifact(out).records
                if r.get("kind") == "cell"]
        assert rows == [clean]

    def test_scheduler_drain_leaves_resumable_artifact(self, tmp_path):
        spec = SweepSpec(protocols=("qlec", "leach"), lambdas=(4.0,),
                         seeds=(0, 1), rounds=2)
        out = tmp_path / "sched.jsonl"
        flag = DrainFlag()

        def latch(scheduler, result):
            flag.request()

        drained = run_scheduled(
            spec, out, num_workers=2, on_progress=latch, stop_requested=flag
        )
        assert len(drained.executed) < len(spec)
        assert load_status(shard_status_path(out))["state"] == "stopped"

        finished = run_scheduled(spec, out, num_workers=2)
        assert len(finished.skipped) == len(drained.executed)
        assert len(finished.executed) == len(spec) - len(drained.executed)
        assert load_status(shard_status_path(out))["state"] == "complete"


class TestServeDrain:
    def _write_job(self, jobs_dir, name="j1", checkpoint_every=None):
        spec = SweepSpec(protocols=("qlec", "leach"), lambdas=(4.0,),
                         seeds=(0,), rounds=2)
        payload = {"spec": spec.to_payload(), "workers": 1}
        if checkpoint_every:
            payload["checkpoint_every"] = checkpoint_every
        (jobs_dir / f"{name}.job.json").write_text(json.dumps(payload))
        return spec

    def test_drained_serve_publishes_stopped_then_finishes(self, tmp_path):
        from repro.parallel.serve import serve_once, serve_status_path

        spec = self._write_job(tmp_path, checkpoint_every=1)
        flag = DrainFlag()

        def latch(job, scheduler, result):
            flag.request()

        report = serve_once(tmp_path, stop_requested=flag, on_progress=latch)
        status = json.loads(serve_status_path(tmp_path).read_text())
        assert status["state"] == "stopped"
        assert report.executed < len(spec)
        # Checkpointing jobs snapshot under <dir>/checkpoints/<name>/.
        assert (tmp_path / "checkpoints" / "j1").is_dir()

        report2 = serve_once(tmp_path)
        status2 = json.loads(serve_status_path(tmp_path).read_text())
        assert status2["state"] == "idle"
        assert [j["state"] for j in status2["jobs"]] == ["complete"]
        assert report2.executed + report2.resumed == len(spec)

    def test_pre_latched_flag_runs_nothing(self, tmp_path):
        from repro.parallel.serve import serve_once, serve_status_path

        self._write_job(tmp_path)
        flag = DrainFlag()
        flag.request(signal.SIGTERM)
        report = serve_once(tmp_path, stop_requested=flag)
        assert report.executed == 0
        status = json.loads(serve_status_path(tmp_path).read_text())
        assert status["state"] == "stopped"


class TestStatusStates:
    def test_draining_and_stopped_rows(self, tmp_path):
        from repro.parallel import ShardStatusWriter

        writer = ShardStatusWriter(
            tmp_path / "a.jsonl", spec_fingerprint="f" * 16,
            shard=1, num_shards=1, cells_total=4,
        )
        writer.start()
        writer.cell_finished()
        writer.draining()
        assert load_status(shard_status_path(tmp_path / "a.jsonl"))[
            "state"
        ] == "draining"
        writer.stopped()
        last = load_status(shard_status_path(tmp_path / "a.jsonl"))
        assert last["state"] == "stopped"
        assert last["done"] == 1  # progress survives into the terminal row


class TestDrainSignals:
    def test_flag_latches_once_and_records_signum(self):
        flag = DrainFlag()
        assert not flag() and not flag.requested
        flag.request(signal.SIGTERM)
        flag.request(signal.SIGINT)
        assert flag() and flag.requested
        assert flag.signum == signal.SIGTERM  # first signal wins

    def test_handlers_installed_and_restored(self):
        from repro.parallel import drain_on_signals

        before = signal.getsignal(signal.SIGTERM)
        with drain_on_signals() as flag:
            assert signal.getsignal(signal.SIGTERM) is not before
            os.kill(os.getpid(), signal.SIGTERM)
            assert flag.requested and flag.signum == signal.SIGTERM
            # First signal re-installed the previous handler (escalation).
            assert signal.getsignal(signal.SIGTERM) is before
        assert signal.getsignal(signal.SIGTERM) is before
