"""Tests for crash-safe engine checkpointing (repro.checkpoint).

The headline contract — SIGKILL + resume is bit-identical end-to-end —
is enforced by ``scripts/check_checkpoint_equivalence.py`` in CI; these
tests cover the snapshot format, the refusal taxonomy, rotation, and
the in-process resume identity.
"""

import dataclasses
import json

import pytest

from repro.analysis.sweep import PROTOCOLS
from repro.checkpoint import (
    CHECKPOINT_SUFFIX,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointVersionError,
    CheckpointWriter,
    DrainInterrupted,
    latest_valid,
    read_checkpoint,
    run_signature,
    snapshot_paths,
    write_checkpoint,
)
from repro.config import RoutingConfig, paper_config
from repro.simulation import SimulationEngine
from repro.telemetry import Telemetry
from repro.telemetry.manifest import config_fingerprint
from repro.telemetry.registry import deterministic_view


def _config(rounds=8, seed=3, faults=None, routing="direct"):
    config = dataclasses.replace(
        paper_config(rounds=rounds, seed=seed),
        routing=RoutingConfig(kind=routing),
    )
    if faults:
        from repro.faults import build_fault_plan

        config = config.replace(faults=build_fault_plan(faults, config))
    return config


def _engine(config, *, batched=True, telemetry=False):
    tel = Telemetry() if telemetry else None
    return SimulationEngine(
        config, PROTOCOLS["qlec"](), batched=batched, telemetry=tel
    )


def _round_stats(result):
    return [dataclasses.asdict(r) for r in result.per_round]


class TestRoundtripIdentity:
    @pytest.mark.parametrize("batched", [True, False])
    def test_snapshot_restore_finish_is_bit_identical(self, tmp_path, batched):
        config = _config(faults="ch-kill", routing="tree")
        baseline = _engine(config, batched=batched, telemetry=True)
        expected = baseline.run()

        interrupted = _engine(config, batched=batched, telemetry=True)
        for _ in range(4):
            interrupted.run_round()
        path = tmp_path / f"run-r00000004{CHECKPOINT_SUFFIX}"
        header = write_checkpoint(interrupted, path)
        assert header["round_index"] == 4
        assert header["config_fingerprint"] == config_fingerprint(config)

        restored_header, restored = read_checkpoint(
            path,
            config_fingerprint=config_fingerprint(config),
            run=run_signature(interrupted),
        )
        assert restored_header == header
        resumed = restored.run()

        assert resumed.summary() == expected.summary()
        assert _round_stats(resumed) == _round_stats(expected)
        assert deterministic_view(
            restored.telemetry.snapshot()
        ) == deterministic_view(baseline.telemetry.snapshot())
        assert resumed.faults == expected.faults
        assert resumed.extras.get("routing") == expected.extras.get("routing")

    def test_checkpointing_run_equals_plain_run(self, tmp_path):
        config = _config()
        plain = _engine(config).run()
        checkpointed = _engine(config).run(
            checkpoint_every=3, checkpoint_dir=tmp_path
        )
        assert checkpointed.summary() == plain.summary()
        assert _round_stats(checkpointed) == _round_stats(plain)
        assert snapshot_paths(tmp_path, "run")  # snapshots were written

    def test_resume_from_engine_run_snapshot(self, tmp_path):
        config = _config()
        expected = _engine(config).run()
        _engine(config).run(checkpoint_every=2, checkpoint_dir=tmp_path)
        found = latest_valid(
            tmp_path, "run", config_fingerprint=config_fingerprint(config)
        )
        assert found is not None
        path, header, engine = found
        assert header["round_index"] == 8  # newest boundary snapshot
        # Rewind proof on a mid-run snapshot: pick an older one.
        older = snapshot_paths(tmp_path, "run")[0]
        _, mid_engine = read_checkpoint(older)
        resumed = mid_engine.run()
        assert resumed.summary() == expected.summary()


class TestDrain:
    def test_drain_snapshots_and_raises(self, tmp_path):
        config = _config()
        engine = _engine(config)
        with pytest.raises(DrainInterrupted) as exc_info:
            engine.run(
                checkpoint_every=100,  # no periodic boundary hit
                checkpoint_dir=tmp_path,
                stop_requested=lambda: True,
            )
        exc = exc_info.value
        assert exc.round_index == 1  # stopped after the first round
        assert exc.snapshot_path is not None and exc.snapshot_path.exists()
        assert not isinstance(exc, CheckpointError)

        expected = _engine(config).run()
        _, restored = read_checkpoint(exc.snapshot_path)
        assert restored.run().summary() == expected.summary()

    def test_drain_without_checkpointing_carries_no_snapshot(self):
        engine = _engine(_config())
        with pytest.raises(DrainInterrupted) as exc_info:
            engine.run(stop_requested=lambda: True)
        assert exc_info.value.snapshot_path is None

    def test_checkpoint_every_requires_directory(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            _engine(_config()).run(checkpoint_every=2)


class TestRefusalTaxonomy:
    @pytest.fixture()
    def snapshot(self, tmp_path):
        engine = _engine(_config(rounds=3))
        engine.run_round()
        path = tmp_path / f"t-r00000001{CHECKPOINT_SUFFIX}"
        write_checkpoint(engine, path)
        return path

    def test_torn_tail_is_corrupt(self, snapshot):
        raw = snapshot.read_bytes()
        snapshot.write_bytes(raw[:-64])
        with pytest.raises(CheckpointCorruptError, match="torn payload"):
            read_checkpoint(snapshot)

    def test_flipped_payload_byte_is_corrupt(self, snapshot):
        raw = bytearray(snapshot.read_bytes())
        raw[-20] ^= 0xFF
        snapshot.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            read_checkpoint(snapshot)

    def test_missing_header_newline_is_corrupt(self, tmp_path):
        path = tmp_path / f"x-r00000001{CHECKPOINT_SUFFIX}"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            read_checkpoint(path)

    def test_foreign_kind_is_corrupt(self, tmp_path):
        path = tmp_path / f"x-r00000001{CHECKPOINT_SUFFIX}"
        path.write_bytes(b'{"kind": "shard-status"}\npayload')
        with pytest.raises(CheckpointCorruptError, match="not an engine"):
            read_checkpoint(path)

    def test_config_fingerprint_mismatch(self, snapshot):
        with pytest.raises(CheckpointMismatchError, match="changed scenario"):
            read_checkpoint(snapshot, config_fingerprint="0" * 16)

    def test_run_shape_mismatch(self, snapshot):
        other = run_signature(_engine(_config(rounds=3), telemetry=True))
        with pytest.raises(CheckpointMismatchError, match="run shape"):
            read_checkpoint(snapshot, run=other)

    def _rewrite_header(self, path, **overrides):
        raw = path.read_bytes()
        nl = raw.find(b"\n")
        header = json.loads(raw[:nl])
        header.update(overrides)
        path.write_bytes(
            json.dumps(header, sort_keys=True).encode() + raw[nl:]
        )

    def test_cross_version_refused_before_deserializing(self, snapshot):
        self._rewrite_header(snapshot, version="0.0.0-other")
        with pytest.raises(CheckpointVersionError, match="0.0.0-other"):
            read_checkpoint(snapshot)

    def test_unknown_schema_refused(self, snapshot):
        self._rewrite_header(snapshot, schema=999)
        with pytest.raises(CheckpointVersionError, match="schema"):
            read_checkpoint(snapshot)

    def test_missing_required_key_is_corrupt(self, snapshot):
        raw = snapshot.read_bytes()
        nl = raw.find(b"\n")
        header = json.loads(raw[:nl])
        del header["payload_sha256"]
        snapshot.write_bytes(
            json.dumps(header, sort_keys=True).encode() + raw[nl:]
        )
        with pytest.raises(CheckpointCorruptError, match="missing keys"):
            read_checkpoint(snapshot)


class TestRotationAndDegradation:
    def test_keep_last_rotation(self, tmp_path):
        engine = _engine(_config(rounds=6))
        writer = CheckpointWriter(tmp_path, "run", every=1, keep_last=2)
        for _ in range(5):
            engine.run_round()
            writer.maybe(engine)
        names = [p.name for p in snapshot_paths(tmp_path, "run")]
        assert names == [
            f"run-r00000004{CHECKPOINT_SUFFIX}",
            f"run-r00000005{CHECKPOINT_SUFFIX}",
        ]

    def test_latest_valid_skips_corrupt_newest(self, tmp_path):
        engine = _engine(_config(rounds=6))
        writer = CheckpointWriter(tmp_path, "run", every=1, keep_last=3)
        for _ in range(3):
            engine.run_round()
            writer.maybe(engine)
        paths = snapshot_paths(tmp_path, "run")
        paths[-1].write_bytes(paths[-1].read_bytes()[:-100])  # tear newest
        found = latest_valid(tmp_path, "run")
        assert found is not None
        path, header, _ = found
        assert path == paths[-2]
        assert header["round_index"] == 2

    def test_latest_valid_none_when_nothing_validates(self, tmp_path):
        assert latest_valid(tmp_path, "run") is None
        (tmp_path / f"run-r00000001{CHECKPOINT_SUFFIX}").write_bytes(b"junk")
        assert latest_valid(tmp_path, "run") is None

    def test_latest_valid_respects_expectations(self, tmp_path):
        engine = _engine(_config(rounds=3))
        engine.run_round()
        CheckpointWriter(tmp_path, "run", every=1).maybe(engine)
        assert (
            latest_valid(tmp_path, "run", config_fingerprint="0" * 16) is None
        )
        assert latest_valid(tmp_path, "run") is not None

    def test_writer_validates_knobs(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            CheckpointWriter(tmp_path, "t", every=0)
        with pytest.raises(ValueError, match="keep_last"):
            CheckpointWriter(tmp_path, "t", every=1, keep_last=0)
