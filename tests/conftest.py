"""Shared fixtures for the test suite.

Small, fast scenario builders: tests that need a full network use a
30-node cube and a handful of rounds so the whole suite stays quick
while still exercising every code path a Table-2 run does.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    DeploymentConfig,
    QueueConfig,
    SimulationConfig,
    TrafficConfig,
)
from repro.simulation.state import NetworkState


def make_config(
    n_nodes: int = 30,
    side: float = 120.0,
    initial_energy: float = 0.2,
    rounds: int = 5,
    n_clusters: int = 3,
    mean_interarrival: float = 4.0,
    seed: int = 0,
    **kwargs,
) -> SimulationConfig:
    """A small but fully-featured scenario."""
    return SimulationConfig(
        deployment=DeploymentConfig(
            n_nodes=n_nodes, side=side, initial_energy=initial_energy
        ),
        traffic=TrafficConfig(mean_interarrival=mean_interarrival),
        queue=QueueConfig(),
        rounds=rounds,
        n_clusters=n_clusters,
        seed=seed,
        **kwargs,
    )


@pytest.fixture
def small_config() -> SimulationConfig:
    return make_config()


@pytest.fixture
def small_state(small_config) -> NetworkState:
    return NetworkState(small_config)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
