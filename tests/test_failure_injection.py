"""Failure-injection tests: the system must degrade gracefully, never
crash, and keep its accounting invariants under hostile conditions.

The adverse conditions are expressed through the ``repro.faults`` plan
API — seeded, scheduled, and accounted — rather than by poking engine
internals; one regression test keeps the direct ``channel.blackout``
toggle alive because ad-hoc state injection between rounds is itself a
supported (if unaccounted) debugging technique.
"""

import numpy as np
import pytest

from repro.baselines import DirectProtocol, KMeansProtocol
from repro.config import QueueConfig
from repro.core import QLECProtocol
from repro.faults import FaultEvent, FaultPlan
from repro.simulation.engine import SimulationEngine, run_simulation
from tests.conftest import make_config


class TestChannelBlackout:
    @pytest.mark.parametrize("protocol_cls", [QLECProtocol, KMeansProtocol])
    def test_total_blackout_delivers_nothing(self, protocol_cls):
        plan = FaultPlan(
            events=(FaultEvent(kind="blackout", round=0, duration=5),),
        )
        result = run_simulation(make_config(seed=1, faults=plan), protocol_cls())
        result.validate()
        assert result.packets.delivered == 0
        # Senders still burned energy on the attempts.
        assert result.total_energy > 0.0
        assert result.faults["injected"] == 1

    def test_blackout_mid_run(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="blackout", round=3, duration=3),),
        )
        engine = SimulationEngine(
            make_config(seed=2, rounds=6, faults=plan), QLECProtocol()
        )
        for _ in range(3):
            engine.run_round()
        delivered_before = engine._totals.delivered
        for _ in range(3):
            engine.run_round()
        assert engine._totals.delivered == delivered_before

    def test_direct_blackout_poke_still_works(self):
        """Regression: toggling ``channel.blackout`` by hand between
        rounds (no plan, no accounting) must keep behaving — it is the
        escape hatch for conditions the plan language cannot express."""
        engine = SimulationEngine(make_config(seed=1), QLECProtocol())
        engine.state.channel.blackout = True
        result = engine.run()
        result.validate()
        assert result.packets.delivered == 0
        assert result.faults is None  # unplanned chaos is unaccounted


class TestQueueStarvation:
    def test_zero_capacity_queues(self):
        config = make_config(seed=3).replace(
            queue=QueueConfig(capacity=0, service_rate=1)
        )
        result = run_simulation(config, QLECProtocol())
        result.validate()
        # Every head-bound packet bounced; only channel losses add up.
        assert result.packets.delivered == 0 or result.packets.dropped_queue > 0

    def test_queue_clamp_window(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="queue_clamp", round=1, duration=2, capacity=1),
            ),
        )
        result = run_simulation(
            make_config(seed=3, mean_interarrival=2.0, faults=plan),
            QLECProtocol(),
        )
        result.validate()
        assert result.faults["events_by_kind"].get("queue_clamp") == 1


class TestMassDeath:
    def test_engine_survives_total_network_death(self):
        config = make_config(
            seed=4, initial_energy=0.0005, rounds=10, mean_interarrival=1.0
        )
        result = run_simulation(config, QLECProtocol())
        result.validate()
        assert result.first_death_round is not None

    def test_headless_rounds_fall_back_to_direct(self):
        """Kill every candidate head: the engine must route direct."""
        config = make_config(seed=5, rounds=2)
        engine = SimulationEngine(config, DirectProtocol())
        result = engine.run()
        assert result.packets.mean_hops <= 1.0

    def test_half_population_crash_mid_run_accounted(self):
        """Crashing half the population mid-run must not break packet
        conservation, and every death must carry its cause."""
        config = make_config(seed=6, rounds=6, mean_interarrival=2.0)
        n = config.deployment.n_nodes
        plan = FaultPlan(
            events=(
                FaultEvent(kind="crash", round=1, nodes=tuple(range(0, n, 2))),
            ),
        )
        result = run_simulation(config.replace(faults=plan), KMeansProtocol())
        result.validate()
        p = result.packets
        assert p.generated >= p.delivered + p.dropped
        assert result.faults["deaths_by_cause"]["crash"] == n // 2 + n % 2

    def test_churn_revives_crashed_nodes(self):
        config = make_config(seed=6, rounds=6)
        victims = (0, 1, 2)
        plan = FaultPlan(
            events=(
                FaultEvent(kind="crash", round=1, nodes=victims),
                FaultEvent(kind="revive", round=3, nodes=victims),
            ),
        )
        result = run_simulation(config.replace(faults=plan), QLECProtocol())
        result.validate()
        assert result.faults["revived"] == len(victims)


class TestDegenerateScales:
    def test_single_node_network(self):
        config = make_config(n_nodes=1, n_clusters=1, seed=7)
        result = run_simulation(config, DirectProtocol())
        result.validate()

    def test_two_node_network_with_clustering(self):
        config = make_config(n_nodes=2, n_clusters=1, seed=8)
        result = run_simulation(config, QLECProtocol())
        result.validate()

    def test_k_larger_than_population(self):
        config = make_config(n_nodes=4, n_clusters=10, seed=9)
        result = run_simulation(config, QLECProtocol())
        result.validate()

    def test_one_round(self):
        config = make_config(rounds=1, seed=10)
        result = run_simulation(config, QLECProtocol())
        assert result.rounds_executed == 1

    def test_one_slot_per_round(self):
        from repro.config import TrafficConfig

        config = make_config(seed=11).replace(
            traffic=TrafficConfig(mean_interarrival=2.0, slots_per_round=1)
        )
        result = run_simulation(config, QLECProtocol())
        result.validate()

    def test_crash_entire_population_via_plan(self):
        """A plan that kills everyone: the engine must finish the run
        with empty rounds and conserved accounting."""
        config = make_config(seed=12, rounds=4)
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind="crash", round=1,
                    nodes=tuple(range(config.deployment.n_nodes)),
                ),
            ),
        )
        result = run_simulation(config.replace(faults=plan), QLECProtocol())
        result.validate()
        assert result.n_alive_final == 0
