"""Failure-injection tests: the system must degrade gracefully, never
crash, and keep its accounting invariants under hostile conditions."""

import numpy as np
import pytest

from repro.baselines import DirectProtocol, KMeansProtocol
from repro.config import QueueConfig
from repro.core import QLECProtocol
from repro.simulation.engine import SimulationEngine, run_simulation
from tests.conftest import make_config


class TestChannelBlackout:
    @pytest.mark.parametrize("protocol_cls", [QLECProtocol, KMeansProtocol])
    def test_total_blackout_delivers_nothing(self, protocol_cls):
        engine = SimulationEngine(make_config(seed=1), protocol_cls())
        engine.state.channel.blackout = True
        result = engine.run()
        result.validate()
        assert result.packets.delivered == 0
        # Senders still burned energy on the attempts.
        assert result.total_energy > 0.0

    def test_blackout_mid_run(self):
        engine = SimulationEngine(make_config(seed=2, rounds=6), QLECProtocol())
        for _ in range(3):
            engine.run_round()
        delivered_before = engine._totals.delivered
        engine.state.channel.blackout = True
        for _ in range(3):
            engine.run_round()
        assert engine._totals.delivered == delivered_before


class TestQueueStarvation:
    def test_zero_capacity_queues(self):
        config = make_config(seed=3).replace(
            queue=QueueConfig(capacity=0, service_rate=1)
        )
        result = run_simulation(config, QLECProtocol())
        result.validate()
        # Every head-bound packet bounced; only channel losses add up.
        assert result.packets.delivered == 0 or result.packets.dropped_queue > 0


class TestMassDeath:
    def test_engine_survives_total_network_death(self):
        config = make_config(
            seed=4, initial_energy=0.0005, rounds=10, mean_interarrival=1.0
        )
        result = run_simulation(config, QLECProtocol())
        result.validate()
        assert result.first_death_round is not None

    def test_headless_rounds_fall_back_to_direct(self):
        """Kill every candidate head: the engine must route direct."""
        config = make_config(seed=5, rounds=2)
        engine = SimulationEngine(config, DirectProtocol())
        result = engine.run()
        assert result.packets.mean_hops <= 1.0

    def test_relay_death_mid_round_accounted(self):
        """Killing nodes mid-run must not break packet conservation."""
        config = make_config(seed=6, rounds=6, mean_interarrival=2.0)
        engine = SimulationEngine(config, KMeansProtocol())
        engine.run_round()
        # Assassinate half the population between rounds.
        engine.state.ledger.discharge(np.arange(0, engine.state.n, 2), 10.0, "tx")
        for _ in range(5):
            engine.run_round()
        totals = engine._totals
        assert totals.generated >= totals.delivered + totals.dropped


class TestDegenerateScales:
    def test_single_node_network(self):
        config = make_config(n_nodes=1, n_clusters=1, seed=7)
        result = run_simulation(config, DirectProtocol())
        result.validate()

    def test_two_node_network_with_clustering(self):
        config = make_config(n_nodes=2, n_clusters=1, seed=8)
        result = run_simulation(config, QLECProtocol())
        result.validate()

    def test_k_larger_than_population(self):
        config = make_config(n_nodes=4, n_clusters=10, seed=9)
        result = run_simulation(config, QLECProtocol())
        result.validate()

    def test_one_round(self):
        config = make_config(rounds=1, seed=10)
        result = run_simulation(config, QLECProtocol())
        assert result.rounds_executed == 1

    def test_one_slot_per_round(self):
        from repro.config import TrafficConfig

        config = make_config(seed=11).replace(
            traffic=TrafficConfig(mean_interarrival=2.0, slots_per_round=1)
        )
        result = run_simulation(config, QLECProtocol())
        result.validate()
