"""Neighbor discovery: deterministic tables, energy-charged control
plane, and the member/member-network views cluster-tree parents use."""

import numpy as np
import pytest

from repro.core import QLECProtocol
from repro.routing import NeighborTable, discover
from repro.simulation.state import NetworkState
from tests.conftest import make_config


def make_state(seed=0, **kwargs):
    return NetworkState(make_config(seed=seed, **kwargs))


def elect_heads(state):
    proto = QLECProtocol()
    proto.prepare(state)
    return proto.select_cluster_heads(state)


class TestDiscovery:
    def test_tables_are_deterministic(self):
        outs = []
        for _ in range(2):
            state = make_state(seed=3)
            heads = elect_heads(state)
            table = discover(state, heads, range_factor=1.0, hello_bits=256)
            outs.append(table)
        a, b = outs
        assert np.array_equal(a.heads, b.heads)
        assert a.broadcasts == b.broadcasts
        for h in a.neighbors:
            assert np.array_equal(a.neighbors[h], b.neighbors[h])
            assert a.bs_reachable[h] == b.bs_reachable[h]
            assert np.array_equal(a.members[h], b.members[h])

    def test_no_rng_stream_is_consumed(self):
        state = make_state(seed=5)
        heads = elect_heads(state)
        marks = {
            name: getattr(state, name).bit_generator.state
            for name in ("traffic_rng", "protocol_rng", "engine_rng",
                         "routing_rng", "fault_rng")
        }
        discover(state, heads, range_factor=1.5, hello_bits=256)
        for name, mark in marks.items():
            assert getattr(state, name).bit_generator.state == mark, name

    def test_adjacency_is_symmetric_and_range_limited(self):
        state = make_state(seed=1)
        heads = elect_heads(state)
        table = discover(state, heads, range_factor=1.0, hello_bits=256)
        for h, nbrs in table.neighbors.items():
            i = table.index_of(h)
            for n in nbrs:
                j = table.index_of(int(n))
                assert table.dist[i, j] <= table.radio_range
                assert h in table.neighbors[int(n)]
            assert h not in set(int(n) for n in nbrs)

    def test_discovery_bills_the_ledger(self):
        state = make_state(seed=2)
        heads = elect_heads(state)
        before = state.ledger.residual.copy()
        cats_before = state.ledger.category_breakdown()
        table = discover(state, heads, range_factor=1.5, hello_bits=256)
        after = state.ledger.residual
        cats_after = state.ledger.category_breakdown()
        # Every live head paid tx for both phases.
        assert np.all(after[table.heads] < before[table.heads])
        assert cats_after["tx"] > cats_before["tx"]
        # Heads with at least one neighbor also paid rx.
        if any(v.size for v in table.neighbors.values()):
            assert cats_after["rx"] > cats_before["rx"]
        # Non-participants are untouched.
        others = np.setdiff1d(np.arange(state.n), table.heads)
        assert np.array_equal(after[others], before[others])
        assert table.broadcasts == 2 * table.heads.size

    def test_share_phase_scales_with_table_size(self):
        """Phase-2 frames grow with neighbor count + member count, so a
        denser overlay costs more than a sparse one."""
        costs = {}
        for rf in (0.5, 2.0):
            state = make_state(seed=4)
            heads = elect_heads(state)
            before = state.ledger.residual.sum()
            discover(state, heads, range_factor=rf, hello_bits=256)
            costs[rf] = before - state.ledger.residual.sum()
        assert costs[2.0] > costs[0.5]

    def test_members_partition_alive_nonheads_in_range(self):
        state = make_state(seed=6)
        heads = elect_heads(state)
        table = discover(state, heads, range_factor=2.0, hello_bits=256)
        all_members = np.concatenate(
            [table.members[int(h)] for h in table.heads]
        )
        # Hard assignment: nobody appears under two heads, no head is a
        # member, everyone listed is alive.
        assert np.unique(all_members).size == all_members.size
        assert not np.isin(all_members, table.heads).any()
        assert state.ledger.alive[all_members].all()
        # member_networks is the union of the neighbors' member tables.
        for h in table.heads:
            h = int(h)
            want = (
                np.unique(np.concatenate(
                    [table.members[int(n)] for n in table.neighbors[h]]
                ))
                if table.neighbors[h].size
                else np.empty(0, dtype=np.intp)
            )
            assert np.array_equal(table.member_networks[h], want)

    def test_dead_heads_are_excluded(self):
        state = make_state(seed=7)
        heads = elect_heads(state)
        victim = int(heads[0])
        state.ledger.force_kill([victim])
        table = discover(state, heads, range_factor=1.5, hello_bits=256)
        assert victim not in table.heads
        assert victim not in table.neighbors

    def test_empty_overlay(self):
        state = make_state(seed=8)
        table = discover(
            state, np.empty(0, dtype=np.intp), range_factor=1.0,
            hello_bits=256,
        )
        assert table.heads.size == 0
        assert table.broadcasts == 0
        with pytest.raises(KeyError):
            table.index_of(0)

    def test_index_of_rejects_non_overlay_nodes(self):
        state = make_state(seed=9)
        heads = elect_heads(state)
        table = discover(state, heads, range_factor=1.0, hello_bits=256)
        outsider = int(np.setdiff1d(np.arange(state.n), table.heads)[0])
        with pytest.raises(KeyError):
            table.index_of(outsider)

    def test_table_is_a_plain_dataclass(self):
        table = NeighborTable(heads=np.empty(0, dtype=np.intp), radio_range=1.0)
        assert table.broadcasts == 0
        assert table.neighbors == {}
