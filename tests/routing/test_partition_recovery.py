"""Acceptance: under the ``chaos-partition`` scenario the mesh-repair
tree sustains strictly higher PDR than the tree-only fallback, with
visible repairs and bounded recovery.

The scenario severs the +x transit corridor nearest the BS (windowed
link degrade + three mid-round CH kill waves), so routes break *after*
each round's tree was built.  A corner-mounted BS makes the overlay
genuinely multi-hop: far heads must relay through the corridor, and
when it dies only mesh repair can detour through the intact -x side.
"""

import dataclasses

import pytest

from repro.config import DeploymentConfig, RoutingConfig, paper_config
from repro.core import QLECProtocol
from repro.faults import build_fault_plan, rounds_to_recover
from repro.simulation.engine import run_simulation

# Same convention as tests/faults/test_recovery.py.
MAX_RECOVERY_ROUNDS = 3


def partition_config(seed, mesh):
    base = dataclasses.replace(
        paper_config(seed=seed, rounds=16),
        n_clusters=10,
        deployment=DeploymentConfig(
            n_nodes=100, side=200.0, initial_energy=0.25,
            bs_position=(0.0, 0.0, 0.0),
        ),
    )
    plan = build_fault_plan("partition", base)
    cfg = dataclasses.replace(
        base,
        faults=plan,
        routing=RoutingConfig(kind="tree", range_factor=1.8, mesh=mesh),
    )
    return cfg, plan.events[0].round


@pytest.mark.parametrize("seed", [0, 2])
class TestPartitionRecovery:
    def run_pair(self, seed):
        results = {}
        for mesh in (True, False):
            cfg, fault_round = partition_config(seed, mesh)
            results[mesh] = run_simulation(cfg, QLECProtocol())
        return results, fault_round

    def test_mesh_beats_tree_only_fallback(self, seed):
        results, _ = self.run_pair(seed)
        assert results[True].delivery_rate > results[False].delivery_rate

    def test_repairs_are_observable(self, seed):
        results, _ = self.run_pair(seed)
        mesh = results[True].extras["routing"]
        assert mesh["repairs"] > 0
        # The fallback router never repairs — it only counts fallbacks.
        assert results[False].extras["routing"]["repairs"] == 0
        assert results[False].extras["routing"]["fallbacks"] > 0

    def test_recovery_is_bounded(self, seed):
        results, fault_round = self.run_pair(seed)
        lag = rounds_to_recover(
            results[True], fault_round, threshold=0.9
        )
        assert lag is not None
        assert lag <= MAX_RECOVERY_ROUNDS


class TestScenarioWiring:
    def test_chaos_partition_scenario_is_registered(self):
        from repro.simulation.scenarios import SCENARIOS

        assert "chaos-partition" in SCENARIOS

    def test_plan_kills_strike_mid_round(self):
        cfg, _ = partition_config(0, mesh=True)
        kills = [e for e in cfg.faults.events if e.kind == "ch_kill"]
        assert len(kills) == 3
        assert all(e.slot == cfg.traffic.slots_per_round // 2 for e in kills)
        degrades = [e for e in cfg.faults.events if e.kind == "link_degrade"]
        assert len(degrades) == 1
        # Kills and degrade name the same explicit victim corridor.
        assert set(kills[0].nodes) == set(degrades[0].nodes)
