"""Routing flows end-to-end through the sweep/sharding/CLI plumbing:
spec validation, cell identity, run_cell, and the argument surface."""

import pytest

from repro.analysis.sweep import run_cell
from repro.cli import build_parser
from repro.parallel.sharding import SweepSpec


def spec(**kwargs):
    base = dict(protocols=("qlec",), lambdas=(4.0,), seeds=(0,), rounds=3)
    base.update(kwargs)
    return SweepSpec(**base)


class TestSweepSpec:
    def test_default_is_direct(self):
        assert spec().routing == "direct"

    def test_rejects_unknown_substrate(self):
        with pytest.raises(ValueError):
            spec(routing="flood")

    def test_payload_round_trip(self):
        s = spec(routing="tree")
        assert SweepSpec.from_payload(s.to_payload()) == s

    def test_fingerprint_and_cell_ids_diverge_by_substrate(self):
        """tree artifacts must never resume into or merge with direct
        ones — both the spec fingerprint and every cell ID change."""
        direct, tree = spec(), spec(routing="tree")
        assert direct.fingerprint != tree.fingerprint
        ids_direct = [c.cell_id for c in direct.cells()]
        ids_tree = [c.cell_id for c in tree.cells()]
        assert set(ids_direct).isdisjoint(ids_tree)

    def test_cell_args_carry_routing_last(self):
        for args in spec(routing="qspt").cell_args():
            assert args[-1] == "qspt"

    def test_cell_config_fingerprints_embed_routing(self):
        """The materialised per-cell config hashes the routing kind, so
        the same grid point under different substrates never shares a
        config fingerprint."""
        direct = {c.config_fingerprint for c in spec().cells()}
        tree = {c.config_fingerprint for c in spec(routing="tree").cells()}
        assert direct.isdisjoint(tree)


class TestWorkerArgs:
    def test_default_cell_fn_accepts_cell_args_and_routes(self):
        """The shard/scheduler worker entrypoint must accept the full
        canonical ``cell_args()`` tuple and actually run the substrate
        the spec (and hence the cell ID) pinned — a dropped routing
        argument would silently compute direct cells under tree IDs."""
        from repro.parallel.sharding import _default_cell_fn

        args = spec(routing="tree", rounds=2).cell_args()[0]
        row = _default_cell_fn(*args)
        assert row["routing"]["kind"] == "tree"


class TestRunCell:
    def test_run_cell_routes(self):
        row = run_cell("qlec", 4.0, 0, 0.25, 2, routing="tree")
        assert row["routing"]["kind"] == "tree"
        assert row["routing"]["broadcasts"] > 0

    def test_run_cell_direct_keeps_legacy_row_shape(self):
        row = run_cell("qlec", 4.0, 0, 0.25, 2)
        assert "routing" not in row

    def test_run_cell_rejects_unknown_substrate(self):
        with pytest.raises(ValueError):
            run_cell("qlec", 4.0, 0, 0.25, 2, routing="flood")


class TestCli:
    @pytest.mark.parametrize("cmd", ["quickstart", "sweep", "scenario"])
    def test_routing_flag_parses(self, cmd):
        parser = build_parser()
        tail = {"quickstart": [], "sweep": [], "scenario": ["table2"]}[cmd]
        args = parser.parse_args([cmd, *tail, "--routing", "tree"])
        assert args.routing == "tree"
        args = parser.parse_args([cmd, *tail])
        assert args.routing == "direct"

    def test_routing_flag_rejects_unknown(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["quickstart", "--routing", "flood"])
