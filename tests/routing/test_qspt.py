"""QSPT acceptance: the Q-learned greedy policy converges to the true
shortest-path tree on a seeded grid overlay, validated against the
exact value-iteration solver (and plain BFS hop counts)."""

import collections

import numpy as np
import pytest

from repro.config import RoutingConfig
from repro.core import QLECProtocol
from repro.routing import build_overlay_mdp, build_router, learn_spt
from repro.rl.mdp import value_iteration
from repro.simulation.state import NetworkState
from tests.conftest import make_config


def grid_overlay(rows: int, cols: int):
    """A rows x cols 4-connected grid of head ids 0..rows*cols-1; only
    the corner head 0 reaches the BS directly."""
    neighbors = {}
    for r in range(rows):
        for c in range(cols):
            h = r * cols + c
            nbrs = []
            if r > 0:
                nbrs.append(h - cols)
            if r < rows - 1:
                nbrs.append(h + cols)
            if c > 0:
                nbrs.append(h - 1)
            if c < cols - 1:
                nbrs.append(h + 1)
            neighbors[h] = np.asarray(sorted(nbrs), dtype=np.intp)
    bs_reachable = {h: h == 0 for h in neighbors}
    return neighbors, bs_reachable


def bfs_hops(neighbors, sources):
    """Hop count to the BS for every head (sources are 1 hop away)."""
    dist = {s: 1 for s in sources}
    queue = collections.deque(sources)
    while queue:
        u = queue.popleft()
        for v in neighbors[u]:
            v = int(v)
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


class TestGridConvergence:
    def test_learned_tree_is_shortest_path(self):
        """The acceptance criterion: on a seeded 4x4 grid where only
        corner 0 reaches the BS, the learned parent pointers yield
        exactly the BFS hop count for every head."""
        neighbors, bs_reachable = grid_overlay(4, 4)
        mdp, candidates, heads = build_overlay_mdp(neighbors, bs_reachable)
        rng = np.random.default_rng(42)
        parent = learn_spt(
            mdp, candidates, rng, episodes=600, epsilon=0.2,
            learning_rate=0.5,
        )
        bs_state = len(heads)
        optimal = bfs_hops(neighbors, [0])
        for s, h in enumerate(heads):
            hops = 0
            cur = s
            while cur != bs_state:
                cur = int(parent[cur])
                assert cur >= 0, f"head {h} learned no route"
                hops += 1
                assert hops <= len(heads)
            assert hops == optimal[h], (
                f"head {h}: learned {hops} hops, optimal {optimal[h]}"
            )

    def test_learned_values_match_value_iteration(self):
        """Greedy returns of the learned policy equal V* from the exact
        solver (unit hop costs, discounted)."""
        neighbors, bs_reachable = grid_overlay(3, 3)
        mdp, candidates, heads = build_overlay_mdp(neighbors, bs_reachable)
        v_star, _ = value_iteration(mdp)
        rng = np.random.default_rng(7)
        parent = learn_spt(
            mdp, candidates, rng, episodes=600, epsilon=0.2,
            learning_rate=0.5,
        )
        bs_state = len(heads)
        gamma = mdp.gamma
        for s in range(len(heads)):
            ret, cur, disc = 0.0, s, 1.0
            while cur != bs_state:
                ret += disc * -1.0
                disc *= gamma
                cur = int(parent[cur])
            assert ret == pytest.approx(v_star[s], abs=1e-9)

    def test_disconnected_component_learns_no_route(self):
        """Heads with no path to a BS-reachable head must stay routeless
        (never a forwarding loop)."""
        neighbors, bs_reachable = grid_overlay(2, 2)
        # An isolated pair 10-11, unreachable from the grid.
        neighbors[10] = np.asarray([11], dtype=np.intp)
        neighbors[11] = np.asarray([10], dtype=np.intp)
        bs_reachable[10] = bs_reachable[11] = False
        mdp, candidates, heads = build_overlay_mdp(neighbors, bs_reachable)
        rng = np.random.default_rng(3)
        parent = learn_spt(
            mdp, candidates, rng, episodes=400, epsilon=0.2,
            learning_rate=0.5,
        )
        bs_state = len(heads)
        for s, h in enumerate(heads):
            cur, seen = s, set()
            while cur != bs_state and cur not in seen and cur >= 0:
                seen.add(cur)
                cur = int(parent[cur])
            if h in (10, 11):
                assert cur != bs_state
            else:
                assert cur == bs_state


class TestQSPTSubstrate:
    def test_uses_the_routing_rng_stream_only(self):
        """QSPT training draws exclusively on ``routing_rng`` — the
        traffic/channel/protocol streams stay untouched."""
        state = NetworkState(make_config(seed=0))
        proto = QLECProtocol()
        proto.prepare(state)
        heads = proto.select_cluster_heads(state)
        marks = {
            name: getattr(state, name).bit_generator.state
            for name in ("traffic_rng", "protocol_rng", "engine_rng",
                         "fault_rng")
        }
        routing_mark = state.routing_rng.bit_generator.state
        router = build_router(RoutingConfig(kind="qspt"))
        router.begin_round(state, heads)
        for name, mark in marks.items():
            assert getattr(state, name).bit_generator.state == mark, name
        assert state.routing_rng.bit_generator.state != routing_mark

    def test_per_round_rebuild_is_deterministic(self):
        routes = []
        for _ in range(2):
            state = NetworkState(make_config(seed=11))
            proto = QLECProtocol()
            proto.prepare(state)
            heads = proto.select_cluster_heads(state)
            router = build_router(RoutingConfig(kind="qspt"))
            router.begin_round(state, heads)
            routes.append(dict(router._parent))
        assert routes[0] == routes[1]
