"""Tree formation, mesh repair, fallback accounting, and the router
registry / config surface."""

import numpy as np
import pytest

from repro.config import ROUTING_CHOICES, RoutingConfig, SimulationConfig
from repro.core import QLECProtocol
from repro.routing import (
    DIRECT_ROUTER,
    ClusterTreeRouting,
    QSPTRouting,
    build_router,
)
from repro.routing.base import DEGRADE_THRESHOLD
from repro.simulation.state import NetworkState
from tests.conftest import make_config


def make_state(seed=0, **kwargs):
    return NetworkState(make_config(seed=seed, **kwargs))


def elect_heads(state):
    proto = QLECProtocol()
    proto.prepare(state)
    return proto.select_cluster_heads(state)


class TestRoutingConfig:
    def test_defaults(self):
        rc = RoutingConfig()
        assert rc.kind == "direct"
        assert rc.mesh is True

    def test_kind_validation(self):
        with pytest.raises(ValueError):
            RoutingConfig(kind="flood")
        for kind in ROUTING_CHOICES:
            assert RoutingConfig(kind=kind).kind == kind

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            RoutingConfig(range_factor=0.0)
        with pytest.raises(ValueError):
            RoutingConfig(hello_bits=0)
        with pytest.raises(ValueError):
            RoutingConfig(qspt_episodes=0)
        with pytest.raises(ValueError):
            RoutingConfig(qspt_epsilon=1.5)
        with pytest.raises(ValueError):
            RoutingConfig(qspt_learning_rate=0.0)

    def test_simulation_config_embeds_routing(self):
        cfg = make_config(routing=RoutingConfig(kind="tree"))
        assert cfg.routing.kind == "tree"
        with pytest.raises(ValueError):
            SimulationConfig(routing="tree")  # must be the dataclass


class TestRegistry:
    def test_direct_is_the_inert_singleton(self):
        router = build_router(RoutingConfig(kind="direct"))
        assert router is DIRECT_ROUTER
        assert router.active is False

    def test_active_kinds_get_fresh_instances(self):
        a = build_router(RoutingConfig(kind="tree"))
        b = build_router(RoutingConfig(kind="tree"))
        assert isinstance(a, ClusterTreeRouting)
        assert a is not b
        assert a.active is True
        q = build_router(RoutingConfig(kind="qspt"))
        assert isinstance(q, QSPTRouting)

    def test_summary_carries_kind_and_counters(self):
        router = build_router(RoutingConfig(kind="tree"))
        s = router.summary()
        assert s == {
            "kind": "tree", "repairs": 0, "fallbacks": 0, "broadcasts": 0,
        }


class TestTreeFormation:
    def test_parents_make_progress_toward_bs(self):
        """Every routed head's parent has strictly smaller cost — the
        potential that certifies repairs cannot loop."""
        state = make_state(seed=0)
        heads = elect_heads(state)
        router = build_router(RoutingConfig(kind="tree", range_factor=2.0))
        router.begin_round(state, heads)
        assert router._parent, "no routes formed on the small cube"
        for head, parent in router._parent.items():
            if parent == state.bs_index:
                continue
            assert router._cost[parent] < router._cost[head]

    def test_paths_end_heads_only_and_bounded(self):
        state = make_state(seed=1)
        heads = elect_heads(state)
        router = build_router(RoutingConfig(kind="tree", range_factor=2.0))
        router.begin_round(state, heads)
        head_set = set(int(h) for h in heads)
        for h in heads:
            path = router.uplink_path(state, int(h), heads)
            assert len(path) <= heads.size
            assert all(p in head_set for p in path)
            assert int(h) not in path

    def test_unknown_head_falls_back_direct(self):
        """A head elected after discovery (not in this round's table)
        takes the long-shot direct uplink and is counted."""
        state = make_state(seed=2)
        heads = elect_heads(state)
        router = build_router(RoutingConfig(kind="tree"))
        router.begin_round(state, heads)
        outsider = int(np.setdiff1d(np.arange(state.n), heads)[0])
        before = router.counters()["fallbacks"]
        assert router.uplink_path(state, outsider, heads) == []
        assert router.counters()["fallbacks"] == before + 1


def _forced_chain_router(state, heads, kind="tree", mesh=True):
    """A router whose parent map is a hand-built 3-hop chain
    h0 -> h1 -> h2 -> BS so repair behaviour is fully controlled."""
    router = build_router(RoutingConfig(kind=kind, mesh=mesh))
    router.begin_round(state, heads)
    live = router.table.heads
    h0, h1, h2 = (int(live[0]), int(live[1]), int(live[2]))
    router._parent = {h0: h1, h1: h2, h2: state.bs_index}
    router._cost = {h0: 3.0, h1: 2.0, h2: 1.0}
    # Make the chain links visible to mesh repair regardless of what
    # discovery found on this geometry.
    router.table.neighbors[h0] = np.asarray([h1, h2], dtype=np.intp)
    return router, (h0, h1, h2)


class TestMeshRepairAndFallback:
    def test_dead_parent_is_repaired_around(self):
        state = make_state(seed=3)
        heads = elect_heads(state)
        router, (h0, h1, h2) = _forced_chain_router(state, heads)
        state.ledger.force_kill([h1])
        path = router.uplink_path(state, h0, heads)
        assert path == [h2], "repair should skip the dead parent to h2"
        assert router.counters()["repairs"] == 1

    def test_collapsed_link_triggers_repair(self):
        state = make_state(seed=3)
        heads = elect_heads(state)
        router, (h0, h1, h2) = _forced_chain_router(state, heads)
        # Push the h0->h1 estimate under the degrade threshold.
        while state.link_estimator.get(h0, h1) >= DEGRADE_THRESHOLD:
            state.link_estimator.update(h0, h1, False)
        path = router.uplink_path(state, h0, heads)
        assert path == [h2]
        assert router.counters()["repairs"] == 1

    def test_mesh_off_falls_back_instead(self):
        state = make_state(seed=3)
        heads = elect_heads(state)
        router, (h0, h1, h2) = _forced_chain_router(state, heads, mesh=False)
        state.ledger.force_kill([h1])
        path = router.uplink_path(state, h0, heads)
        assert path == []
        assert router.counters()["repairs"] == 0
        assert router.counters()["fallbacks"] == 1

    def test_no_usable_neighbor_keeps_walked_prefix(self):
        state = make_state(seed=3)
        heads = elect_heads(state)
        router, (h0, h1, h2) = _forced_chain_router(state, heads)
        state.ledger.force_kill([h2])
        # h0 -> h1 fine; h1's parent h2 is dead and h1 has no repair
        # candidate with smaller cost -> fallback keeps [h1].
        router.table.neighbors[h1] = np.empty(0, dtype=np.intp)
        path = router.uplink_path(state, h0, heads)
        assert path == [h1]
        assert router.counters()["fallbacks"] == 1

    def test_counters_accumulate_across_rounds(self):
        state = make_state(seed=4)
        heads = elect_heads(state)
        router = build_router(RoutingConfig(kind="tree"))
        router.begin_round(state, heads)
        first = router.counters()["broadcasts"]
        assert first == router.table.broadcasts
        router.begin_round(state, heads)
        assert router.counters()["broadcasts"] > first
