"""Routing substrate wired through the engine: null-cost default,
scalar==batched under active substrates, path tracing, hop-aware
accounting, and telemetry counters."""

import dataclasses
import json

import numpy as np

from repro.config import RoutingConfig, paper_config
from repro.core import QLECProtocol
from repro.simulation import TraceRecorder
from repro.simulation.engine import SimulationEngine, run_simulation
from repro.telemetry import Telemetry
from tests.conftest import make_config


def routed_config(kind, seed=0, rounds=5, **routing_kwargs):
    return make_config(
        seed=seed, rounds=rounds,
        routing=RoutingConfig(kind=kind, **routing_kwargs),
    )


class TestNullSubstrate:
    def test_direct_router_is_inert(self):
        engine = SimulationEngine(routed_config("direct"), QLECProtocol())
        assert engine.router.active is False
        mark = engine.state.routing_rng.bit_generator.state
        result = engine.run()
        assert engine.state.routing_rng.bit_generator.state == mark
        assert "routing" not in result.extras

    def test_direct_emits_no_paths_or_metrics(self):
        tel = Telemetry()
        trace = TraceRecorder()
        SimulationEngine(
            routed_config("direct"), QLECProtocol(),
            telemetry=tel, trace=trace,
        ).run()
        assert trace.paths == []
        assert not any(k.startswith("routing/") for k in tel.snapshot())

    def test_direct_matches_default_config_bitwise(self):
        """An explicit routing=direct config is the same scenario as a
        config that never mentions routing."""
        base = make_config(seed=1, rounds=4)
        explicit = dataclasses.replace(base, routing=RoutingConfig())
        a = run_simulation(base, QLECProtocol())
        b = run_simulation(explicit, QLECProtocol())
        assert a.summary() == b.summary()
        assert np.array_equal(a.residual_final, b.residual_final)


class TestActiveSubstrates:
    def test_discovery_bills_energy(self):
        """An active substrate pays for its control plane: same
        scenario, strictly more energy than the direct run."""
        direct = run_simulation(routed_config("direct"), QLECProtocol())
        tree = run_simulation(routed_config("tree"), QLECProtocol())
        assert tree.total_energy > direct.total_energy
        assert tree.extras["routing"]["broadcasts"] > 0

    def test_scalar_batched_equivalence(self):
        for kind in ("tree", "qspt"):
            cfg = routed_config(kind, seed=2, rounds=5)
            batched = run_simulation(cfg, QLECProtocol(), batched=True)
            scalar = run_simulation(cfg, QLECProtocol(), batched=False)
            assert batched.summary() == scalar.summary(), kind
            assert batched.extras["routing"] == scalar.extras["routing"], kind

    def test_runs_are_reproducible(self):
        for kind in ("tree", "qspt"):
            cfg = routed_config(kind, seed=3, rounds=5)
            a = run_simulation(cfg, QLECProtocol())
            b = run_simulation(cfg, QLECProtocol())
            assert a.summary() == b.summary(), kind
            assert a.extras["routing"] == b.extras["routing"], kind

    def test_multi_hop_latency_and_hops_accounted(self):
        """With a short radio (multi-hop trees), delivered packets pick
        up extra hops and slots relative to the direct uplink."""
        cfg_direct = paper_config(seed=0, rounds=5)
        cfg_tree = dataclasses.replace(
            cfg_direct, routing=RoutingConfig(kind="tree", range_factor=1.2)
        )
        direct = run_simulation(cfg_direct, QLECProtocol())
        tree = run_simulation(cfg_tree, QLECProtocol())
        d_hops = direct.packets.total_hops / direct.packets.delivered
        t_hops = tree.packets.total_hops / tree.packets.delivered
        assert t_hops > d_hops
        assert tree.mean_latency > direct.mean_latency


class TestPathTracing:
    def run_traced(self, kind, seed=0, rounds=4):
        trace = TraceRecorder()
        result = SimulationEngine(
            routed_config(kind, seed=seed, rounds=rounds),
            QLECProtocol(), trace=trace,
        ).run()
        return result, trace

    def test_path_records_present_and_consistent(self):
        result, trace = self.run_traced("tree")
        assert trace.paths, "active substrate emitted no path records"
        n_rounds = len(trace.records)
        for rec in trace.paths:
            assert rec["kind"] == "path"
            assert 0 <= rec["round"] < n_rounds
            assert rec["hops"] == len(rec["path"]) + 1
            assert 0 <= rec["delivered"] <= rec["frames"]
            assert rec["head"] not in rec["path"]

    def test_jsonl_round_trip(self):
        _, trace = self.run_traced("qspt")
        text = trace.to_jsonl()
        back = TraceRecorder.parse_jsonl(text)
        assert len(back.records) == len(trace.records)
        assert back.paths == trace.paths
        # Path records are valid JSON objects on their own lines.
        kinds = [json.loads(l).get("kind") for l in text.splitlines()]
        assert kinds.count("path") == len(trace.paths)

    def test_delivered_path_hops_sum_matches_packet_stats(self):
        """Every delivered frame's hop count flows into the packet
        accounting: sum(hops * delivered) over path records equals the
        run's total uplink hops beyond the member->CH hop."""
        result, trace = self.run_traced("tree", seed=4)
        from_paths = sum(r["hops"] * r["delivered"] for r in trace.paths)
        # total_hops counts member->CH (1) + uplink hops per delivered
        # CH-relayed packet; direct-to-BS members contribute 1 total.
        assert from_paths <= result.packets.total_hops
        assert from_paths > 0


class TestRoutingTelemetry:
    def test_counters_and_histogram(self):
        tel = Telemetry()
        SimulationEngine(
            routed_config("tree"), QLECProtocol(), telemetry=tel
        ).run()
        snap = tel.snapshot()
        for name in ("routing/repairs", "routing/fallbacks",
                     "routing/broadcasts"):
            assert name in snap, name
            assert snap[name]["kind"] == "counter"
        hops = snap["routing/hops"]
        assert hops["kind"] == "histogram"
        assert hops["count"] > 0

    def test_metrics_live_in_the_deterministic_view(self):
        from repro.telemetry.registry import deterministic_view

        tel = Telemetry()
        SimulationEngine(
            routed_config("tree"), QLECProtocol(), telemetry=tel
        ).run()
        det = deterministic_view(tel.snapshot())
        assert any(k.startswith("routing/") for k in det)

    def test_broadcast_counter_matches_summary(self):
        tel = Telemetry()
        engine = SimulationEngine(
            routed_config("qspt"), QLECProtocol(), telemetry=tel
        )
        result = engine.run()
        snap = tel.snapshot()
        assert (
            snap["routing/broadcasts"]["value"]
            == result.extras["routing"]["broadcasts"]
        )
