"""Batched slot kernel vs scalar reference mode.

``SimulationEngine(batched=False)`` differs from the default in exactly
one step: relay choice runs as a per-sender ``choose_relay`` loop
instead of one ``choose_relays`` call.  Everything else — energy
batches, channel draws, queue operations, estimator updates — is
shared code, so the two modes must produce *bit-identical* traces for
every protocol.  That identity is what makes the scalar mode a valid
baseline for the slot-kernel benchmark.
"""

import numpy as np
import pytest

from repro.analysis import PROTOCOLS
from repro.config import paper_config
from repro.simulation.engine import SimulationEngine


def fingerprint(result):
    rows = []
    for rs in result.per_round:
        p = rs.packets
        rows.append(
            (
                rs.round_index, rs.n_heads, rs.n_alive, rs.energy_consumed,
                p.generated, p.delivered, p.dropped_channel, p.dropped_queue,
                p.dropped_dead, p.expired, p.total_latency_slots,
                p.total_hops, rs.mean_queue_peak, rs.v_updates,
            )
        )
    return rows


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_engine_modes_bit_identical(name):
    cfg = paper_config(seed=3, rounds=4)
    batched = SimulationEngine(cfg, PROTOCOLS[name](), batched=True).run()
    scalar = SimulationEngine(cfg, PROTOCOLS[name](), batched=False).run()
    assert fingerprint(batched) == fingerprint(scalar)
    assert batched.packets.latencies == scalar.packets.latencies
    assert batched.total_energy == scalar.total_energy


def _relay_choices(name: str, batched: bool) -> np.ndarray:
    """Drive a fresh engine two rounds, then ask the protocol for one
    slot's relay choices in the requested mode.

    Both calls see identical protocol/network state (the two modes are
    bit-identical through the warm-up, per the test above), so any
    difference isolates ``choose_relays`` vs the scalar loop.
    """
    cfg = paper_config(seed=5, rounds=4)
    engine = SimulationEngine(cfg, PROTOCOLS[name](), batched=batched)
    for _ in range(2):
        engine.run_round()
    st = engine.state
    proto = engine.protocol
    heads = proto.validate_heads(st, proto.select_cluster_heads(st))
    alive = np.flatnonzero(st.ledger.alive)
    senders = alive[~np.isin(alive, heads)]
    qlens = np.zeros(heads.size, dtype=np.int64)
    if batched:
        return np.asarray(proto.choose_relays(st, senders, heads, qlens))
    return np.array(
        [proto.choose_relay(st, int(s), heads, qlens) for s in senders],
        dtype=np.intp,
    )


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_choose_relays_matches_scalar_loop(name):
    batched = _relay_choices(name, batched=True)
    scalar = _relay_choices(name, batched=False)
    assert batched.tolist() == scalar.tolist()
