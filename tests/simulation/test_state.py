"""Tests for the shared NetworkState."""

import numpy as np
import pytest

from repro.network.deployment import uniform_cube
from repro.simulation.state import NetworkState
from tests.conftest import make_config


class TestConstruction:
    def test_deploys_from_config(self):
        state = NetworkState(make_config(n_nodes=25))
        assert state.n == 25
        assert state.bs_index == 25

    def test_accepts_prebuilt_deployment(self):
        nodes, bs = uniform_cube(8, 60.0, 0.3, rng=0)
        state = NetworkState(make_config(), nodes=nodes, bs=bs)
        assert state.n == 8
        np.testing.assert_allclose(state.ledger.initial, 0.3)

    def test_initial_energy_override(self):
        nodes, bs = uniform_cube(4, 60.0, 1.0, rng=0)
        energies = np.array([0.1, 0.2, 0.3, 0.4])
        state = NetworkState(
            make_config(), nodes=nodes, bs=bs, initial_energy=energies
        )
        np.testing.assert_allclose(state.ledger.initial, energies)

    def test_same_seed_same_deployment(self):
        a = NetworkState(make_config(seed=9))
        b = NetworkState(make_config(seed=9))
        np.testing.assert_array_equal(a.nodes.positions, b.nodes.positions)

    def test_rng_streams_are_independent(self):
        state = NetworkState(make_config(seed=1))
        t = state.traffic_rng.random(5)
        p = state.protocol_rng.random(5)
        assert not np.allclose(t, p)

    def test_estimator_config_applied(self):
        cfg = make_config().replace(estimator_alpha=0.4, estimator_shared=False)
        state = NetworkState(cfg)
        assert state.link_estimator.alpha == 0.4
        assert not state.link_estimator.shared


class TestGeometry:
    def test_distance_to_bs_sentinel(self):
        state = NetworkState(make_config(seed=2))
        expected = float(state.topology.d_to_bs[3])
        assert state.distance(3, state.bs_index) == pytest.approx(expected)

    def test_distance_between_nodes(self):
        state = NetworkState(make_config(seed=2))
        p = state.nodes.positions
        assert state.distance(0, 1) == pytest.approx(
            float(np.linalg.norm(p[0] - p[1]))
        )

    def test_distances_from_mixed_targets(self):
        state = NetworkState(make_config(seed=2))
        targets = np.array([1, state.bs_index, 4])
        d = state.distances_from(0, targets)
        assert d[0] == pytest.approx(state.distance(0, 1))
        assert d[1] == pytest.approx(state.distance(0, state.bs_index))
        assert d[2] == pytest.approx(state.distance(0, 4))


class TestBookkeeping:
    def test_average_energy_estimate_eq2(self):
        state = NetworkState(make_config(n_nodes=10, initial_energy=0.2, rounds=10))
        state.round_index = 5
        # Eq. (2): (E_total / N) * (1 - r/R) = 0.2 * 0.5
        assert state.average_energy_estimate() == pytest.approx(0.1)

    def test_mark_cluster_heads(self):
        state = NetworkState(make_config())
        state.round_index = 3
        state.mark_cluster_heads(np.array([1, 2]))
        assert state.last_ch_round[1] == 3
        assert state.last_ch_round[0] == -np.inf

    def test_alive_indices_shrink(self):
        state = NetworkState(make_config())
        state.ledger.discharge(0, 10.0, "tx")
        assert 0 not in state.alive_indices()
