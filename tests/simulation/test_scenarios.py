"""Tests for the named scenario catalog."""

import numpy as np
import pytest

from repro.core import QLECProtocol
from repro.simulation import (
    SimulationEngine,
    build_scenario,
    scenario_names,
)


class TestCatalog:
    def test_names_sorted_and_nonempty(self):
        names = scenario_names()
        assert names == sorted(names)
        assert "table2" in names
        assert "underwater" in names

    def test_unknown_rejected_with_hint(self):
        with pytest.raises(KeyError, match="table2"):
            build_scenario("marsbase")

    def test_table2_shape(self):
        config, nodes, bs = build_scenario("table2", seed=1)
        assert config.deployment.n_nodes == 100
        assert nodes is None and bs is None

    def test_literal_battery(self):
        config, _, _ = build_scenario("table2-literal")
        assert config.deployment.initial_energy == 5.0

    def test_underwater_has_prebuilt_deployment(self):
        config, nodes, bs = build_scenario("underwater", seed=2)
        assert nodes is not None and bs is not None
        assert bs.position[2] == config.deployment.side  # surface buoy

    def test_mountain_bs_on_summit(self):
        config, nodes, bs = build_scenario("mountain", seed=0)
        assert bs.position[2] >= nodes.positions[:, 2].max()

    def test_heterogeneous_energy_mix(self):
        config, _, _ = build_scenario("heterogeneous")
        assert config.deployment.advanced_fraction == 0.2

    def test_underwater_deep_is_multihop(self):
        config, nodes, bs = build_scenario("underwater-deep", seed=0)
        assert nodes is not None and bs is not None
        assert bs.position[2] == config.deployment.side  # surface buoy
        assert config.routing.kind == "tree"

    def test_largearea_corner_bs(self):
        config, nodes, bs = build_scenario("largearea-corner", seed=0)
        assert nodes is None and bs is None  # cube deployment from config
        assert config.deployment.bs_position == (0.0, 0.0, 0.0)
        assert config.deployment.side == 500.0
        assert config.routing.kind == "tree"

    @pytest.mark.parametrize(
        "name", ["chaos-underwater-deep", "chaos-largearea"]
    )
    def test_chaos_twins_scale_plan_to_preset(self, name):
        base_name = name.replace("chaos-", "", 1)
        if base_name == "largearea":
            base_name = "largearea-corner"
        config, _, _ = build_scenario(name, seed=0)
        base, _, _ = build_scenario(base_name, seed=0)
        assert config.faults is not None and base.faults is None
        # The plan materialised against the preset's own shape.
        assert config.deployment == base.deployment
        assert config.rounds == base.rounds

    def test_seed_changes_deployment(self):
        _, a, _ = build_scenario("underwater", seed=1)
        _, b, _ = build_scenario("underwater", seed=2)
        assert not np.allclose(a.positions, b.positions)

    @pytest.mark.parametrize("name", ["table2", "congested", "heterogeneous"])
    def test_cube_scenarios_run(self, name):
        config, nodes, bs = build_scenario(name, seed=0)
        config = config.replace(rounds=2)
        result = SimulationEngine(config, QLECProtocol()).run()
        result.validate()

    @pytest.mark.parametrize(
        "name", ["underwater", "mountain", "underwater-deep"]
    )
    def test_prebuilt_scenarios_run(self, name):
        config, nodes, bs = build_scenario(name, seed=0)
        config = config.replace(rounds=2)
        result = SimulationEngine(
            config, QLECProtocol(), nodes=nodes, bs=bs
        ).run()
        result.validate()

    def test_largearea_corner_runs_with_tree_routing(self):
        config, nodes, bs = build_scenario("largearea-corner", seed=0)
        config = config.replace(rounds=2)
        result = SimulationEngine(config, QLECProtocol()).run()
        result.validate()
        assert result.extras["routing"]["kind"] == "tree"
