"""Tests for the per-round trace recorder."""

import json


from repro.core import QLECProtocol
from repro.simulation import SimulationEngine, TraceRecorder
from tests.conftest import make_config


def run_traced(seed=1, rounds=4):
    trace = TraceRecorder()
    engine = SimulationEngine(
        make_config(seed=seed, rounds=rounds), QLECProtocol(), trace=trace
    )
    result = engine.run()
    return trace, result


class TestTraceRecorder:
    def test_one_record_per_round(self):
        trace, result = run_traced(rounds=4)
        assert len(trace) == result.rounds_executed == 4

    def test_records_match_result_totals(self):
        trace, result = run_traced()
        assert sum(r.generated for r in trace) == result.packets.generated
        assert sum(r.delivered for r in trace) == result.packets.delivered
        assert sum(r.energy_consumed for r in trace) == result.total_energy

    def test_round_indices_sequential(self):
        trace, _ = run_traced()
        assert [r.round_index for r in trace] == [0, 1, 2, 3]

    def test_heads_recorded(self):
        trace, _ = run_traced()
        assert all(len(r.heads) >= 1 for r in trace)

    def test_residuals_monotone_without_harvesting(self):
        trace, _ = run_traced()
        totals = [r.total_residual for r in trace]
        assert all(a >= b - 1e-12 for a, b in zip(totals, totals[1:]))

    def test_head_service_counts(self):
        trace, _ = run_traced()
        counts = trace.head_service_counts()
        assert sum(counts.values()) == sum(len(r.heads) for r in trace)

    def test_jsonl_round_trips(self):
        trace, _ = run_traced(rounds=2)
        lines = trace.to_jsonl().splitlines()
        assert len(lines) == 3  # manifest header + one line per round
        parsed = json.loads(lines[1])
        assert parsed["round_index"] == 0
        assert isinstance(parsed["heads"], list)

    def test_write_jsonl(self, tmp_path):
        trace, _ = run_traced(rounds=2)
        path = tmp_path / "trace.jsonl"
        trace.write_jsonl(path)
        assert len(path.read_text().strip().splitlines()) == 3

    def test_untraced_engine_has_no_overhead_hook(self):
        engine = SimulationEngine(make_config(seed=2), QLECProtocol())
        assert engine.trace is None
        engine.run()


class TestManifestHeader:
    def test_engine_fills_manifest(self):
        trace, _ = run_traced(seed=3)
        assert trace.manifest is not None
        assert trace.manifest["kind"] == "manifest"
        assert trace.manifest["protocol"] == "qlec"
        assert trace.manifest["seed"] == 3

    def test_manifest_is_first_jsonl_line(self):
        trace, _ = run_traced(rounds=2)
        first = json.loads(trace.to_jsonl().splitlines()[0])
        assert first["kind"] == "manifest"
        assert first["package"] == "repro"

    def test_explicit_manifest_not_overwritten(self):
        trace = TraceRecorder(manifest={"kind": "manifest", "custom": True})
        SimulationEngine(make_config(seed=1), QLECProtocol(), trace=trace).run()
        assert trace.manifest["custom"] is True

    def test_parse_round_trips_with_header(self):
        trace, _ = run_traced(rounds=3)
        clone = TraceRecorder.parse_jsonl(trace.to_jsonl())
        assert clone.manifest == trace.manifest
        assert clone.records == trace.records

    def test_parse_accepts_headerless_dump(self):
        trace, _ = run_traced(rounds=2)
        body = "\n".join(trace.to_jsonl().splitlines()[1:])
        clone = TraceRecorder.parse_jsonl(body)
        assert clone.manifest is None
        assert clone.records == trace.records

    def test_parse_rejects_misplaced_manifest(self):
        import pytest

        trace, _ = run_traced(rounds=2)
        lines = trace.to_jsonl().splitlines()
        shuffled = "\n".join([lines[1], lines[0], lines[2]])
        with pytest.raises(ValueError):
            TraceRecorder.parse_jsonl(shuffled)

    def test_load_jsonl(self, tmp_path):
        trace, _ = run_traced(rounds=2)
        path = tmp_path / "trace.jsonl"
        trace.write_jsonl(path)
        clone = TraceRecorder.load_jsonl(path)
        assert clone.manifest == trace.manifest
        assert clone.records == trace.records


class TestAggregationModes:
    def test_energy_ordering(self):
        """perfect fusion < ratio compression < no aggregation."""
        from repro.simulation import run_simulation

        energies = {}
        for mode in ("perfect", "ratio", "none"):
            cfg = make_config(seed=5).replace(aggregation=mode)
            energies[mode] = run_simulation(cfg, QLECProtocol()).total_energy
        assert energies["perfect"] < energies["ratio"] < energies["none"]

    def test_invalid_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            make_config().replace(aggregation="quantum")

    def test_pdr_insensitive_to_fusion_model(self):
        """Fusion only changes uplink framing, not member delivery."""
        from repro.simulation import run_simulation

        pdrs = []
        for mode in ("perfect", "ratio"):
            cfg = make_config(seed=6, mean_interarrival=16.0).replace(
                aggregation=mode
            )
            pdrs.append(run_simulation(cfg, QLECProtocol()).delivery_rate)
        assert abs(pdrs[0] - pdrs[1]) < 0.1
