"""Tests for the per-round trace recorder."""

import json


from repro.core import QLECProtocol
from repro.simulation import SimulationEngine, TraceRecorder
from tests.conftest import make_config


def run_traced(seed=1, rounds=4):
    trace = TraceRecorder()
    engine = SimulationEngine(
        make_config(seed=seed, rounds=rounds), QLECProtocol(), trace=trace
    )
    result = engine.run()
    return trace, result


class TestTraceRecorder:
    def test_one_record_per_round(self):
        trace, result = run_traced(rounds=4)
        assert len(trace) == result.rounds_executed == 4

    def test_records_match_result_totals(self):
        trace, result = run_traced()
        assert sum(r.generated for r in trace) == result.packets.generated
        assert sum(r.delivered for r in trace) == result.packets.delivered
        assert sum(r.energy_consumed for r in trace) == result.total_energy

    def test_round_indices_sequential(self):
        trace, _ = run_traced()
        assert [r.round_index for r in trace] == [0, 1, 2, 3]

    def test_heads_recorded(self):
        trace, _ = run_traced()
        assert all(len(r.heads) >= 1 for r in trace)

    def test_residuals_monotone_without_harvesting(self):
        trace, _ = run_traced()
        totals = [r.total_residual for r in trace]
        assert all(a >= b - 1e-12 for a, b in zip(totals, totals[1:]))

    def test_head_service_counts(self):
        trace, _ = run_traced()
        counts = trace.head_service_counts()
        assert sum(counts.values()) == sum(len(r.heads) for r in trace)

    def test_jsonl_round_trips(self):
        trace, _ = run_traced(rounds=2)
        lines = trace.to_jsonl().splitlines()
        assert len(lines) == 2
        parsed = json.loads(lines[0])
        assert parsed["round_index"] == 0
        assert isinstance(parsed["heads"], list)

    def test_write_jsonl(self, tmp_path):
        trace, _ = run_traced(rounds=2)
        path = tmp_path / "trace.jsonl"
        trace.write_jsonl(path)
        assert len(path.read_text().strip().splitlines()) == 2

    def test_untraced_engine_has_no_overhead_hook(self):
        engine = SimulationEngine(make_config(seed=2), QLECProtocol())
        assert engine.trace is None
        engine.run()


class TestAggregationModes:
    def test_energy_ordering(self):
        """perfect fusion < ratio compression < no aggregation."""
        from repro.simulation import run_simulation

        energies = {}
        for mode in ("perfect", "ratio", "none"):
            cfg = make_config(seed=5).replace(aggregation=mode)
            energies[mode] = run_simulation(cfg, QLECProtocol()).total_energy
        assert energies["perfect"] < energies["ratio"] < energies["none"]

    def test_invalid_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            make_config().replace(aggregation="quantum")

    def test_pdr_insensitive_to_fusion_model(self):
        """Fusion only changes uplink framing, not member delivery."""
        from repro.simulation import run_simulation

        pdrs = []
        for mode in ("perfect", "ratio"):
            cfg = make_config(seed=6, mean_interarrival=16.0).replace(
                aggregation=mode
            )
            pdrs.append(run_simulation(cfg, QLECProtocol()).delivery_rate)
        assert abs(pdrs[0] - pdrs[1]) < 0.1
