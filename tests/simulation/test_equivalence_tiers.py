"""The equivalence tier as run identity: engine, fingerprints, sharding.

The ``bitwise``/``statistical`` split is only safe if the tier is
impossible to lose track of: it must flow into config fingerprints,
run manifests, and sweep cell IDs, and every flow that assumes bitwise
reproducibility (golden traces, artifact merges) must reject the
statistical tier loudly rather than silently mixing numeric regimes.
"""

import pytest

from repro.core import QLECProtocol
from repro.kernels import EquivalenceError
from repro.parallel import SweepSpec, merge_artifacts, run_shard
from repro.simulation import run_simulation
from repro.simulation.engine import SimulationEngine
from repro.simulation.trace import TraceRecorder
from repro.telemetry import config_fingerprint
from tests.conftest import make_config


@pytest.fixture
def tiny_spec():
    def build(equivalence):
        return SweepSpec(
            protocols=("direct",), lambdas=(8.0,), seeds=(0,),
            rounds=2, backend="numpy", equivalence=equivalence,
        )

    return build


class TestEngine:
    def test_statistical_run_completes_and_validates(self):
        cfg = make_config(equivalence="statistical", backend="numpy")
        result = run_simulation(cfg, QLECProtocol())
        result.validate()
        assert 0.0 <= result.delivery_rate <= 1.0

    def test_engine_binds_a_statistical_instance(self):
        cfg = make_config(equivalence="statistical", backend="numpy")
        engine = SimulationEngine(cfg, QLECProtocol())
        assert engine.kernels.equivalence == "statistical"

    def test_statistical_metrics_close_to_bitwise(self):
        """The GEMM distances reassociate, but on a small scenario the
        headline metrics must stay scientifically indistinguishable."""
        ref = run_simulation(make_config(backend="numpy"), QLECProtocol())
        cand = run_simulation(
            make_config(backend="numpy", equivalence="statistical"),
            QLECProtocol(),
        )
        assert cand.delivery_rate == pytest.approx(ref.delivery_rate, abs=0.05)
        assert cand.total_energy == pytest.approx(ref.total_energy, rel=0.05)

    def test_statistical_tier_refuses_traces(self):
        cfg = make_config(equivalence="statistical", backend="numpy")
        with pytest.raises(EquivalenceError, match="golden traces"):
            SimulationEngine(cfg, QLECProtocol(), trace=TraceRecorder())

    def test_manifest_records_the_tier(self):
        from repro.telemetry.manifest import run_manifest

        cfg = make_config(equivalence="statistical", backend="numpy")
        assert run_manifest(cfg, "qlec")["equivalence"] == "statistical"
        assert run_manifest(make_config(), "qlec")["equivalence"] == "bitwise"


class TestIdentity:
    def test_config_fingerprint_differs_by_tier(self):
        bit = make_config(backend="numpy")
        stat = make_config(backend="numpy", equivalence="statistical")
        assert config_fingerprint(bit) != config_fingerprint(stat)

    def test_block_budget_is_fingerprinted(self):
        assert config_fingerprint(make_config()) != config_fingerprint(
            make_config(max_block_mb=64.0)
        )

    def test_cell_ids_differ_by_tier(self, tiny_spec):
        bit_cells = tiny_spec("bitwise").cells()
        stat_cells = tiny_spec("statistical").cells()
        assert {c.cell_id for c in bit_cells}.isdisjoint(
            c.cell_id for c in stat_cells
        )
        assert all(c.equivalence == "statistical" for c in stat_cells)

    def test_spec_payload_round_trips_the_tier(self, tiny_spec):
        spec = tiny_spec("statistical")
        assert SweepSpec.from_payload(spec.to_payload()) == spec

    def test_spec_rejects_unknown_tier(self):
        with pytest.raises(ValueError, match="equivalence"):
            SweepSpec(
                protocols=("direct",), lambdas=(8.0,), seeds=(0,),
                equivalence="sloppy",
            )


class TestCrossTierMerge:
    def _artifact(self, tmp_path, spec, name):
        path = tmp_path / name
        run_shard(spec, 1, 1, path, serial=True)
        return path

    def test_merge_across_tiers_fails_loudly(self, tmp_path, tiny_spec):
        bit = self._artifact(tmp_path, tiny_spec("bitwise"), "bit.jsonl")
        stat = self._artifact(tmp_path, tiny_spec("statistical"), "stat.jsonl")
        with pytest.raises(EquivalenceError, match="statistical.*-tier"):
            merge_artifacts([bit, stat])

    def test_same_tier_merge_still_works(self, tmp_path, tiny_spec):
        spec = tiny_spec("statistical")
        art = self._artifact(tmp_path, spec, "stat.jsonl")
        merged = merge_artifacts([art]).require_complete()
        assert merged.spec.equivalence == "statistical"
        assert len(merged.sweep.rows) == len(spec)

    def test_cli_merge_across_tiers_exits_2(self, tmp_path, tiny_spec, capsys):
        from repro.cli import main

        bit = self._artifact(tmp_path, tiny_spec("bitwise"), "bit.jsonl")
        stat = self._artifact(tmp_path, tiny_spec("statistical"), "stat.jsonl")
        rc = main(["merge", str(bit), str(stat)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "tier" in err


class TestMemoryReport:
    def test_report_shape_and_budget(self):
        from repro.simulation.state import NetworkState

        state = NetworkState(make_config(n_nodes=50, max_block_mb=2.0))
        report = state.memory_report()
        assert set(report) == {"arrays", "resident_mb", "transient_block_mb"}
        assert report["transient_block_mb"] == 2.0
        assert report["resident_mb"] == pytest.approx(
            sum(a["mbytes"] for a in report["arrays"].values())
        )
        positions = report["arrays"]["positions"]
        assert positions["dtype"] == "float64"
        assert positions["shape"] == (50, 3)

    def test_unbudgeted_transient_is_the_full_block(self):
        from repro.simulation.state import NetworkState

        state = NetworkState(make_config(n_nodes=50, n_clusters=4))
        report = state.memory_report()
        expected = 8 * 50 * 4 * 4 / 2**20  # n x k float64 diff + out
        assert report["transient_block_mb"] == pytest.approx(expected)
