"""Golden per-round traces for every registered protocol.

Five rounds of the Table-2 scenario under seed 0, pinned round by
round against ``golden_trace.json``.  Like the scalar golden pins,
these are *intentionally brittle*: any change to RNG stream layout,
the slot kernel's canonical draw order, energy pricing, or queue
semantics trips them for every protocol at once, which is the point —
a refactor that claims bit-exactness must leave this file untouched.

Regenerate after a deliberate behavioural change with::

    PYTHONPATH=src python tests/simulation/test_golden_trace.py
"""

import json
import pathlib

import pytest

from repro.analysis import PROTOCOLS
from repro.config import paper_config
from repro.kernels import available_backends
from repro.simulation.engine import SimulationEngine

SNAPSHOT = pathlib.Path(__file__).with_name("golden_trace.json")
ROUNDS = 5
SEED = 0


def trace(protocol_name: str, backend: str = "numpy") -> list[dict]:
    cfg = paper_config(seed=SEED, rounds=ROUNDS)
    result = SimulationEngine(
        cfg, PROTOCOLS[protocol_name](), backend=backend
    ).run()
    rows = []
    for rs in result.per_round:
        p = rs.packets
        rows.append(
            {
                "round": rs.round_index,
                "n_heads": rs.n_heads,
                "n_alive": rs.n_alive,
                "energy": rs.energy_consumed,
                "generated": p.generated,
                "delivered": p.delivered,
                "dropped_channel": p.dropped_channel,
                "dropped_queue": p.dropped_queue,
                "dropped_dead": p.dropped_dead,
                "expired": p.expired,
                "latency_slots": p.total_latency_slots,
                "hops": p.total_hops,
                "mean_queue_peak": rs.mean_queue_peak,
                "v_updates": rs.v_updates,
            }
        )
    return rows


# Every available kernel backend must reproduce the pinned traces —
# the goldens are backend-independent by the bit-equivalence contract,
# so a host with numba runs each protocol twice.
@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_golden_trace(name, backend):
    snapshot = json.loads(SNAPSHOT.read_text())
    assert name in snapshot, f"no golden trace for {name!r}; regenerate"
    got = trace(name, backend)
    want = snapshot[name]
    assert len(got) == len(want)
    for g, w in zip(got, want):
        for key, val in w.items():
            if isinstance(val, float):
                assert g[key] == pytest.approx(val, rel=1e-9), (
                    name, g["round"], key,
                )
            else:
                assert g[key] == val, (name, g["round"], key)


if __name__ == "__main__":
    SNAPSHOT.write_text(
        json.dumps({n: trace(n) for n in sorted(PROTOCOLS)}, indent=1) + "\n"
    )
    print(f"wrote {SNAPSHOT}")
