"""Tests for the Poisson traffic generator."""

import numpy as np
import pytest

from repro.config import TrafficConfig
from repro.simulation.traffic import PoissonTraffic


def make_traffic(lam=4.0, n=50, seed=0):
    return PoissonTraffic(
        TrafficConfig(mean_interarrival=lam), n, np.random.default_rng(seed)
    )


class TestArrivals:
    def test_respects_active_mask(self):
        traffic = make_traffic()
        active = np.zeros(50, dtype=bool)
        active[:10] = True
        counts = traffic.arrivals(active)
        assert counts[10:].sum() == 0

    def test_mean_rate_matches_lambda(self):
        traffic = make_traffic(lam=4.0, n=200, seed=1)
        active = np.ones(200, dtype=bool)
        total = sum(int(traffic.arrivals(active).sum()) for _ in range(200))
        # E[total] = 200 nodes * 200 slots * 0.25 = 10_000.
        assert total == pytest.approx(10_000, rel=0.05)

    def test_smaller_lambda_more_packets(self):
        congested = make_traffic(lam=2.0, n=100, seed=2)
        idle = make_traffic(lam=16.0, n=100, seed=2)
        active = np.ones(100, dtype=bool)
        c = sum(int(congested.arrivals(active).sum()) for _ in range(50))
        i = sum(int(idle.arrivals(active).sum()) for _ in range(50))
        assert c > 4 * i

    def test_total_generated_counter(self):
        traffic = make_traffic(lam=1.0, n=20, seed=3)
        active = np.ones(20, dtype=bool)
        s = int(traffic.arrivals(active).sum())
        assert traffic.total_generated == s

    def test_all_inactive_is_silent(self):
        traffic = make_traffic()
        counts = traffic.arrivals(np.zeros(50, dtype=bool))
        assert counts.sum() == 0

    def test_shape_mismatch_rejected(self):
        traffic = make_traffic()
        with pytest.raises(ValueError):
            traffic.arrivals(np.ones(10, dtype=bool))

    def test_deterministic_given_stream(self):
        a = make_traffic(seed=7)
        b = make_traffic(seed=7)
        active = np.ones(50, dtype=bool)
        np.testing.assert_array_equal(a.arrivals(active), b.arrivals(active))


class TestExpectedLoad:
    def test_expected_per_round(self):
        traffic = make_traffic(lam=4.0)
        # 10 slots default, rate 0.25 -> 2.5 packets per node per round.
        assert traffic.expected_per_round(10) == pytest.approx(25.0)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            PoissonTraffic(TrafficConfig(), 0, np.random.default_rng(0))
