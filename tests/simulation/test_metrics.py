"""Tests for RoundStats / SimulationResult metrics."""

import numpy as np
import pytest

from repro.network.packet import PacketStats
from repro.simulation.metrics import RoundStats, SimulationResult


def make_result(**overrides):
    packets = overrides.pop("packets", PacketStats(generated=10, delivered=8))
    per_round = overrides.pop(
        "per_round",
        [RoundStats(0, 3, 10, 0.5, PacketStats(generated=10, delivered=8))],
    )
    defaults = dict(
        protocol="test",
        rounds_executed=1,
        rounds_planned=1,
        per_round=per_round,
        packets=packets,
        total_energy=0.5,
        first_death_round=None,
        n_alive_final=10,
        consumption_ratio=np.array([0.1, 0.2, 0.3]),
        residual_final=np.array([0.9, 0.8, 0.7]),
        positions=np.zeros((3, 3)),
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestDerivedMetrics:
    def test_delivery_rate(self):
        assert make_result().delivery_rate == pytest.approx(0.8)

    def test_lifespan_censored(self):
        r = make_result(first_death_round=None, rounds_executed=20)
        assert r.lifespan == 20
        assert r.lifespan_censored

    def test_lifespan_observed(self):
        r = make_result(first_death_round=7)
        assert r.lifespan == 7
        assert not r.lifespan_censored

    def test_energy_per_delivered(self):
        r = make_result(total_energy=4.0)
        assert r.energy_per_delivered_packet == pytest.approx(0.5)

    def test_energy_per_delivered_inf_when_silent(self):
        r = make_result(packets=PacketStats(generated=0, delivered=0))
        assert r.energy_per_delivered_packet == float("inf")

    def test_balance_index_uniform_is_one(self):
        r = make_result(consumption_ratio=np.full(5, 0.2))
        assert r.energy_balance_index() == pytest.approx(1.0)

    def test_balance_index_hotspot_is_low(self):
        c = np.zeros(10)
        c[0] = 1.0
        r = make_result(consumption_ratio=c)
        assert r.energy_balance_index() == pytest.approx(0.1)

    def test_consumption_spread(self):
        r = make_result(consumption_ratio=np.array([0.0, 0.2]))
        mean, std = r.consumption_spread()
        assert mean == pytest.approx(0.1)
        assert std == pytest.approx(0.1)

    def test_summary_keys(self):
        s = make_result().summary()
        for key in ("protocol", "pdr", "energy_J", "lifespan", "balance_index"):
            assert key in s


class TestValidate:
    def test_clean_result_passes(self):
        make_result().validate()

    def test_rejects_inconsistent_round_energy(self):
        r = make_result(total_energy=99.0)
        with pytest.raises(AssertionError):
            r.validate()

    def test_rejects_bad_consumption_ratio(self):
        r = make_result(consumption_ratio=np.array([1.5]))
        with pytest.raises(AssertionError):
            r.validate()

    def test_rejects_packet_overflow(self):
        bad = PacketStats(generated=1, delivered=5)
        r = make_result(
            packets=bad,
            per_round=[RoundStats(0, 1, 10, 0.5, bad)],
        )
        with pytest.raises(AssertionError):
            r.validate()
