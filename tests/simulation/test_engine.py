"""Integration tests for the simulation engine.

These exercise the full data plane — generation, relay choice, channel,
queues, fusion, uplink — for every protocol, and pin down the engine's
conservation invariants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DEECProtocol,
    DirectProtocol,
    FCMProtocol,
    KMeansProtocol,
    LEACHProtocol,
)
from repro.config import QueueConfig
from repro.core import QLECProtocol
from repro.simulation.engine import SimulationEngine, run_simulation
from tests.conftest import make_config

ALL_PROTOCOLS = [
    QLECProtocol,
    FCMProtocol,
    KMeansProtocol,
    LEACHProtocol,
    DEECProtocol,
    DirectProtocol,
]


class TestEveryProtocolRuns:
    @pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS)
    def test_run_completes_with_valid_result(self, protocol_cls):
        result = run_simulation(make_config(seed=3), protocol_cls())
        result.validate()
        assert result.rounds_executed == 5
        assert 0.0 <= result.delivery_rate <= 1.0
        assert result.total_energy >= 0.0
        assert len(result.per_round) == 5

    @pytest.mark.parametrize("protocol_cls", ALL_PROTOCOLS)
    def test_packet_conservation(self, protocol_cls):
        """generated == delivered + dropped + expired (end of run)."""
        result = run_simulation(make_config(seed=4), protocol_cls())
        p = result.packets
        assert p.generated == p.delivered + p.dropped


class TestDeterminism:
    def test_same_seed_bitwise_identical(self):
        a = run_simulation(make_config(seed=11), QLECProtocol())
        b = run_simulation(make_config(seed=11), QLECProtocol())
        assert a.summary() == b.summary()
        np.testing.assert_array_equal(a.residual_final, b.residual_final)

    def test_different_seed_differs(self):
        a = run_simulation(make_config(seed=11), QLECProtocol())
        b = run_simulation(make_config(seed=12), QLECProtocol())
        assert a.packets.generated != b.packets.generated

    def test_traffic_identical_across_protocols(self):
        """Fairness: two protocols with identical head behaviour see the
        same offered load under one seed."""
        a = run_simulation(make_config(seed=13), DirectProtocol())
        b = run_simulation(make_config(seed=13), DirectProtocol())
        assert a.packets.generated == b.packets.generated


class TestEnergyAccounting:
    def test_round_energies_sum_to_total(self):
        result = run_simulation(make_config(seed=5), QLECProtocol())
        assert sum(r.energy_consumed for r in result.per_round) == pytest.approx(
            result.total_energy
        )

    def test_more_traffic_more_energy(self):
        lo = run_simulation(make_config(seed=6, mean_interarrival=16.0), KMeansProtocol())
        hi = run_simulation(make_config(seed=6, mean_interarrival=2.0), KMeansProtocol())
        assert hi.total_energy > lo.total_energy

    def test_silent_network_spends_nothing(self):
        config = make_config(seed=6, mean_interarrival=1e9)
        result = run_simulation(config, DirectProtocol())
        assert result.total_energy == pytest.approx(0.0)
        assert result.delivery_rate == 1.0  # vacuous


class TestDeathHandling:
    def test_stop_on_death_halts_early(self):
        config = make_config(seed=7, initial_energy=0.01, rounds=50,
                             mean_interarrival=2.0)
        result = run_simulation(config, KMeansProtocol(), stop_on_death=True)
        assert result.first_death_round is not None
        assert result.rounds_executed == result.first_death_round

    def test_continue_after_death_records_round(self):
        config = make_config(seed=7, initial_energy=0.01, rounds=10,
                             mean_interarrival=2.0)
        result = run_simulation(config, KMeansProtocol(), stop_on_death=False)
        assert result.first_death_round is not None
        assert result.rounds_executed == 10

    def test_dead_network_generates_nothing(self):
        config = make_config(seed=8, initial_energy=0.001, rounds=8,
                             mean_interarrival=1.0)
        result = run_simulation(config, DirectProtocol())
        # Once everyone is dead, rounds stop producing packets.
        last = result.per_round[-1]
        if result.n_alive_final == 0:
            assert last.packets.generated == 0


class TestQueueAndBSCapacity:
    def test_zero_bs_budget_blocks_direct(self):
        config = make_config(seed=9).replace(
            queue=QueueConfig(bs_capacity_per_slot=0)
        )
        result = run_simulation(config, DirectProtocol())
        assert result.packets.delivered == 0
        assert result.packets.dropped_queue > 0

    def test_tiny_queue_capacity_drops(self):
        config = make_config(seed=9, mean_interarrival=2.0).replace(
            queue=QueueConfig(capacity=1, service_rate=1)
        )
        result = run_simulation(config, KMeansProtocol())
        assert result.packets.dropped_queue + result.packets.expired > 0

    def test_generous_queue_no_queue_drops(self):
        config = make_config(seed=9, mean_interarrival=16.0).replace(
            queue=QueueConfig(capacity=10_000, service_rate=10_000)
        )
        result = run_simulation(config, KMeansProtocol())
        assert result.packets.dropped_queue == 0
        assert result.packets.expired == 0


class TestARQ:
    def test_retries_improve_delivery(self):
        base = make_config(seed=10, n_nodes=20, side=300.0,
                           mean_interarrival=8.0)
        no_arq = run_simulation(base.replace(max_retries=0), DirectProtocol())
        arq = run_simulation(base.replace(max_retries=3), DirectProtocol())
        assert arq.delivery_rate >= no_arq.delivery_rate

    def test_retries_cost_energy(self):
        base = make_config(seed=10, n_nodes=20, side=300.0,
                           mean_interarrival=8.0)
        no_arq = run_simulation(base.replace(max_retries=0), DirectProtocol())
        arq = run_simulation(base.replace(max_retries=3), DirectProtocol())
        assert arq.total_energy > no_arq.total_energy


class TestLatency:
    def test_latency_positive_when_delivered(self):
        result = run_simulation(make_config(seed=12), QLECProtocol())
        if result.packets.delivered:
            assert result.mean_latency >= 1.0

    def test_congestion_raises_latency(self):
        idle = run_simulation(
            make_config(seed=13, mean_interarrival=16.0), KMeansProtocol()
        )
        busy = run_simulation(
            make_config(seed=13, mean_interarrival=1.0), KMeansProtocol()
        )
        assert busy.mean_latency > idle.mean_latency


class TestPropertyInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        lam=st.sampled_from([1.0, 4.0, 16.0]),
    )
    @settings(max_examples=8, deadline=None)
    def test_random_scenarios_hold_invariants(self, seed, lam):
        config = make_config(
            n_nodes=15, rounds=3, seed=seed, mean_interarrival=lam
        )
        result = run_simulation(config, QLECProtocol())
        result.validate()
        p = result.packets
        assert p.generated == p.delivered + p.dropped
        assert np.all(result.residual_final >= 0.0)


class TestRunRound:
    def test_incremental_rounds(self):
        engine = SimulationEngine(make_config(seed=14), QLECProtocol())
        r0 = engine.run_round()
        r1 = engine.run_round()
        assert r0.round_index == 0
        assert r1.round_index == 1
        assert engine.state.round_index == 2
