"""Deeper engine-semantics tests: uplink paths, relay budgets, BS
budget reset, hop-by-hop forwarding internals."""

import numpy as np

from repro.baselines import FCMProtocol, QELARProtocol, TLLEACHProtocol
from repro.baselines.base import ClusteringProtocol
from repro.config import QueueConfig
from repro.core import QLECProtocol
from repro.simulation.engine import SimulationEngine, run_simulation
from tests.conftest import make_config


class _PinnedPathProtocol(ClusteringProtocol):
    """Test double: fixed heads, fixed membership, fixed uplink chain."""

    name = "pinned"

    def __init__(self, heads, path_map=None):
        self._heads = np.asarray(heads, dtype=np.intp)
        self._path_map = path_map or {}

    def select_cluster_heads(self, state):
        return self._heads

    def choose_relay(self, state, node, heads, queue_lengths):
        d = state.distances_from(node, heads)
        return int(heads[d.argmin()])

    def uplink_path(self, state, head, heads):
        return self._path_map.get(int(head), [])


class TestUplinkPaths:
    def test_multi_hop_uplink_charges_intermediate(self):
        config = make_config(seed=1, rounds=1, mean_interarrival=2.0)
        proto = _PinnedPathProtocol(heads=[0, 1], path_map={0: [1]})
        engine = SimulationEngine(config, proto)
        engine.run_round()
        led = engine.state.ledger
        # Head 1 relayed head 0's aggregate: it must have paid rx for
        # transit frames on top of its own cluster traffic.
        assert led.spent_rx > 0.0

    def test_cycle_free_even_with_bad_path_map(self):
        """A path that names the origin again must not loop forever
        (visited-set semantics live in the protocols; the engine just
        walks the chain once)."""
        config = make_config(seed=2, rounds=1)
        proto = _PinnedPathProtocol(heads=[0, 1], path_map={0: [1], 1: [0]})
        result = SimulationEngine(config, proto).run()
        result.validate()

    def test_fcm_transit_consumes_relay_budget(self):
        """Saturate the network: FCM's level-0 heads must reject some
        transit frames (dropped_queue from the uplink stage)."""
        config = make_config(
            seed=3, n_nodes=60, rounds=3, mean_interarrival=1.0
        ).replace(queue=QueueConfig(capacity=16, service_rate=2))
        result = run_simulation(config, FCMProtocol())
        result.validate()
        assert result.packets.dropped_queue > 0


class TestBSBudget:
    def test_budget_resets_each_slot(self):
        """With budget B and S slots, up to B*S direct packets per
        round can land — more than B total proves the per-slot reset."""
        config = make_config(
            seed=4, n_nodes=30, rounds=1, mean_interarrival=1.0
        ).replace(queue=QueueConfig(bs_capacity_per_slot=2))
        from repro.baselines import DirectProtocol

        result = run_simulation(config, DirectProtocol())
        slots = config.traffic.slots_per_round
        assert 2 < result.packets.delivered <= 2 * slots

    def test_budget_is_per_slot_cap(self):
        config = make_config(
            seed=5, n_nodes=30, rounds=2, mean_interarrival=1.0
        ).replace(queue=QueueConfig(bs_capacity_per_slot=1))
        from repro.baselines import DirectProtocol

        result = run_simulation(config, DirectProtocol())
        max_possible = 2 * config.traffic.slots_per_round  # rounds * slots
        assert result.packets.delivered <= max_possible


class TestHopByHop:
    def test_relayed_packets_expire_at_ttl(self):
        config = make_config(n_nodes=50, side=400.0, seed=6).replace(max_hops=2)
        result = run_simulation(config, QELARProtocol())
        result.validate()
        # With TTL 2 on a 400 m network some packets must expire in
        # flight or be forced into long direct shots.
        assert result.packets.expired + result.packets.dropped_queue > 0

    def test_relay_pays_rx_energy(self):
        config = make_config(n_nodes=50, side=400.0, seed=7,
                             mean_interarrival=8.0)
        engine = SimulationEngine(config, QELARProtocol())
        engine.run()
        assert engine.state.ledger.spent_rx > 0.0

    def test_non_hop_protocols_never_store_and_forward(self):
        """Cluster protocols only ever target heads or the BS, so no
        packet should sit in another member's buffer at round end."""
        config = make_config(seed=8, rounds=1)
        engine = SimulationEngine(config, QLECProtocol())
        engine.run_round()
        # Buffers may hold each node's OWN unsent packets only.
        for node in range(engine.state.n):
            for row in engine.buffers.indices(node):
                assert engine.arena.source[row] == node


class TestExpiryAccounting:
    def test_unserviced_queue_expires_with_round(self):
        config = make_config(
            seed=9, rounds=1, mean_interarrival=1.0
        ).replace(queue=QueueConfig(capacity=200, service_rate=1))
        result = run_simulation(config, QLECProtocol())
        assert result.packets.expired > 0
        result.validate()

    def test_expired_status_set(self):
        config = make_config(seed=10, rounds=1, mean_interarrival=1.0).replace(
            queue=QueueConfig(capacity=200, service_rate=1)
        )
        engine = SimulationEngine(config, QLECProtocol())
        engine.run()
        # Nothing remains in CH queues after the run (drained + expired).
        assert engine.buffers.total == 0


class TestTLLEACHUplinkEnergy:
    def test_secondary_chain_costs_more_than_direct(self):
        """Same scenario: two-level relaying burns more uplink energy
        than QLEC's direct head->BS (transit rx + extra tx)."""
        config = make_config(seed=11, n_nodes=60, n_clusters=8,
                             mean_interarrival=4.0)
        tl = run_simulation(config, TLLEACHProtocol())
        flat = run_simulation(config, QLECProtocol())
        assert tl.packets.mean_hops >= flat.packets.mean_hops - 0.2
