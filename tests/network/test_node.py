"""Tests for NodeArray / Node / BaseStation."""

import numpy as np
import pytest

from repro.network.node import BaseStation, NodeArray


def grid_nodes(n=4):
    pos = np.column_stack([np.arange(n), np.zeros(n), np.zeros(n)]).astype(float)
    return NodeArray(pos, 1.0)


class TestNodeArray:
    def test_scalar_energy_broadcasts(self):
        nodes = grid_nodes(3)
        np.testing.assert_allclose(nodes.initial_energy, [1.0, 1.0, 1.0])

    def test_heterogeneous_energy(self):
        nodes = NodeArray(np.zeros((2, 3)), [0.5, 2.0])
        np.testing.assert_allclose(nodes.initial_energy, [0.5, 2.0])

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            NodeArray(np.zeros((3, 2)), 1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            NodeArray(np.zeros((0, 3)), 1.0)

    def test_rejects_nonpositive_energy(self):
        with pytest.raises(ValueError):
            NodeArray(np.zeros((2, 3)), [1.0, 0.0])

    def test_positions_immutable(self):
        nodes = grid_nodes()
        with pytest.raises(ValueError):
            nodes.positions[0, 0] = 9.0

    def test_len_and_getitem(self):
        nodes = grid_nodes(4)
        assert len(nodes) == 4
        node = nodes[2]
        assert node.node_id == 2
        assert node.position == (2.0, 0.0, 0.0)
        assert node.initial_energy == 1.0

    def test_negative_index_wraps(self):
        nodes = grid_nodes(4)
        assert nodes[-1].node_id == 3

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            grid_nodes(4)[4]

    def test_iter_yields_all(self):
        ids = [n.node_id for n in grid_nodes(5)]
        assert ids == list(range(5))

    def test_distances_to_point(self):
        nodes = grid_nodes(3)
        d = nodes.distances_to(np.array([0.0, 0.0, 0.0]))
        np.testing.assert_allclose(d, [0.0, 1.0, 2.0])

    def test_distances_to_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            grid_nodes().distances_to(np.zeros(2))

    def test_source_array_mutation_does_not_leak(self):
        pos = np.zeros((2, 3))
        nodes = NodeArray(pos, 1.0)
        pos[0, 0] = 99.0
        assert nodes.positions[0, 0] == 0.0


class TestBaseStation:
    def test_xyz(self):
        bs = BaseStation((1.0, 2.0, 3.0))
        np.testing.assert_allclose(bs.xyz, [1.0, 2.0, 3.0])

    def test_node_xyz(self):
        node = grid_nodes()[1]
        np.testing.assert_allclose(node.xyz, [1.0, 0.0, 0.0])
