"""Tests for vectorized geometry (Topology, pairwise distances)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.spatial.distance import cdist

from repro.network.deployment import uniform_cube
from repro.network.node import BaseStation, NodeArray
from repro.network.topology import Topology, distances_to_point, pairwise_distances


class TestPairwiseDistances:
    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        a = rng.random((17, 3)) * 100
        b = rng.random((9, 3)) * 100
        np.testing.assert_allclose(
            pairwise_distances(a, b), cdist(a, b), atol=1e-8
        )

    def test_self_distances_zero_diagonal(self):
        rng = np.random.default_rng(1)
        a = rng.random((8, 3))
        d = pairwise_distances(a, a)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-6)

    def test_no_negative_sqrt_artifacts(self):
        # Identical points stress the expanded-form round-off guard.
        a = np.tile([[1e3, 1e3, 1e3]], (4, 1))
        d = pairwise_distances(a, a)
        assert np.all(np.isfinite(d)) and np.all(d >= 0.0)

    def test_rejects_wrong_dims(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((2, 2)), np.zeros((2, 3)))

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_symmetry_property(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((n, 3)) * 50
        d = pairwise_distances(a, a)
        np.testing.assert_allclose(d, d.T, atol=1e-8)


class TestDistancesToPoint:
    def test_known_values(self):
        pts = np.array([[0.0, 0.0, 0.0], [3.0, 4.0, 0.0]])
        d = distances_to_point(pts, np.zeros(3))
        np.testing.assert_allclose(d, [0.0, 5.0])

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            distances_to_point(np.zeros((2, 3)), np.zeros(2))


class TestTopology:
    @pytest.fixture
    def topo(self):
        nodes, bs = uniform_cube(25, 100.0, 1.0, rng=2)
        return Topology(nodes, bs)

    def test_d_to_bs_matches_direct(self, topo):
        expected = np.linalg.norm(
            topo.nodes.positions - topo.bs.xyz, axis=1
        )
        np.testing.assert_allclose(topo.d_to_bs, expected)

    def test_d_to_bs_read_only(self, topo):
        with pytest.raises(ValueError):
            topo.d_to_bs[0] = 0.0

    def test_full_matrix_cached(self, topo):
        assert topo.full_matrix() is topo.full_matrix()

    def test_subset_consistent_with_full(self, topo):
        subset = np.array([0, 3, 7])
        np.testing.assert_allclose(
            topo.distances_to_subset(subset), topo.full_matrix()[:, subset]
        )

    def test_subset_without_full_materialisation(self):
        nodes, bs = uniform_cube(10, 50.0, 1.0, rng=3)
        topo = Topology(nodes, bs)
        d = topo.distances_to_subset(np.array([1, 2]))
        assert d.shape == (10, 2)
        assert topo._full is None  # lazy path not triggered

    def test_empty_subset(self, topo):
        assert topo.distances_to_subset(np.array([], dtype=int)).shape == (25, 0)

    def test_within_radius_excludes_centre(self, topo):
        neighbours = topo.within_radius(0, 1e9)
        assert 0 not in neighbours
        assert neighbours.size == topo.n - 1

    def test_within_radius_zero(self, topo):
        assert topo.within_radius(0, 0.0).size == 0

    def test_within_radius_rejects_negative(self, topo):
        with pytest.raises(ValueError):
            topo.within_radius(0, -1.0)

    def test_mean_d_to_bs(self, topo):
        assert topo.mean_d_to_bs == pytest.approx(float(topo.d_to_bs.mean()))

    def test_grid_within_radius_exact(self):
        pos = np.array(
            [[0, 0, 0], [1, 0, 0], [2, 0, 0], [5, 0, 0]], dtype=float
        )
        topo = Topology(NodeArray(pos, 1.0), BaseStation((0.0, 0.0, 0.0)))
        np.testing.assert_array_equal(topo.within_radius(0, 2.0), [1, 2])
