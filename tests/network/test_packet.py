"""Tests for packet records and aggregate statistics."""

import pytest

from repro.network.packet import PacketRecord, PacketStats, PacketStatus


class TestPacketRecord:
    def test_latency_requires_delivery(self):
        pkt = PacketRecord(source=1, born_slot=10)
        assert pkt.latency() is None
        pkt.delivered_slot = 14
        assert pkt.latency() == 4

    def test_initial_state(self):
        pkt = PacketRecord(source=0, born_slot=0)
        assert pkt.status is PacketStatus.IN_FLIGHT
        assert pkt.hops == 0
        assert pkt.retries == 0


class TestPacketStats:
    def test_delivery_rate_empty_network_is_one(self):
        assert PacketStats().delivery_rate == 1.0

    def test_delivery_rate(self):
        s = PacketStats(generated=10, delivered=7)
        assert s.delivery_rate == pytest.approx(0.7)

    def test_record_delivery_accumulates(self):
        s = PacketStats(generated=2)
        s.record_delivery(3, 2)
        s.record_delivery(5, 1)
        assert s.delivered == 2
        assert s.mean_latency == pytest.approx(4.0)
        assert s.mean_hops == pytest.approx(1.5)
        assert s.latencies == [3, 5]

    def test_record_delivery_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            PacketStats().record_delivery(-1, 1)

    def test_mean_latency_zero_when_no_delivery(self):
        assert PacketStats(generated=5).mean_latency == 0.0

    def test_dropped_sums_all_causes(self):
        s = PacketStats(
            dropped_channel=1, dropped_queue=2, dropped_dead=3, expired=4
        )
        assert s.dropped == 10

    def test_merge(self):
        a = PacketStats(generated=5, delivered=2, dropped_queue=1)
        a.record_delivery(2, 1)
        b = PacketStats(generated=3, dropped_channel=2)
        a.merge(b)
        assert a.generated == 8
        assert a.dropped_channel == 2
        assert a.dropped_queue == 1

    def test_validate_catches_overflow(self):
        s = PacketStats(generated=1, delivered=2)
        with pytest.raises(AssertionError):
            s.validate()

    def test_validate_allows_in_flight(self):
        PacketStats(generated=5, delivered=2).validate()  # 3 still flying
