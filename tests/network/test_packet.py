"""Tests for packet records and aggregate statistics."""

import numpy as np
import pytest

from repro.network.packet import (
    LatencyReservoir,
    PacketArena,
    PacketRecord,
    PacketStats,
    PacketStatus,
)


class TestPacketRecord:
    def test_latency_requires_delivery(self):
        pkt = PacketRecord(source=1, born_slot=10)
        assert pkt.latency() is None
        pkt.delivered_slot = 14
        assert pkt.latency() == 4

    def test_initial_state(self):
        pkt = PacketRecord(source=0, born_slot=0)
        assert pkt.status is PacketStatus.IN_FLIGHT
        assert pkt.hops == 0
        assert pkt.retries == 0


class TestPacketStats:
    def test_delivery_rate_empty_network_is_one(self):
        assert PacketStats().delivery_rate == 1.0

    def test_delivery_rate(self):
        s = PacketStats(generated=10, delivered=7)
        assert s.delivery_rate == pytest.approx(0.7)

    def test_record_delivery_accumulates(self):
        s = PacketStats(generated=2)
        s.record_delivery(3, 2)
        s.record_delivery(5, 1)
        assert s.delivered == 2
        assert s.mean_latency == pytest.approx(4.0)
        assert s.mean_hops == pytest.approx(1.5)
        assert s.latencies == [3, 5]

    def test_record_delivery_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            PacketStats().record_delivery(-1, 1)

    def test_mean_latency_zero_when_no_delivery(self):
        assert PacketStats(generated=5).mean_latency == 0.0

    def test_dropped_sums_all_causes(self):
        s = PacketStats(
            dropped_channel=1, dropped_queue=2, dropped_dead=3, expired=4
        )
        assert s.dropped == 10

    def test_merge(self):
        a = PacketStats(generated=5, delivered=2, dropped_queue=1)
        a.record_delivery(2, 1)
        b = PacketStats(generated=3, dropped_channel=2)
        a.merge(b)
        assert a.generated == 8
        assert a.dropped_channel == 2
        assert a.dropped_queue == 1

    def test_validate_catches_overflow(self):
        s = PacketStats(generated=1, delivered=2)
        with pytest.raises(AssertionError):
            s.validate()

    def test_validate_allows_in_flight(self):
        PacketStats(generated=5, delivered=2).validate()  # 3 still flying

class TestPacketArena:
    def test_alloc_initialises_columns(self):
        arena = PacketArena()
        rows = arena.alloc(np.array([4, 7]), born_slot=12)
        assert arena.source[rows].tolist() == [4, 7]
        assert arena.born_slot[rows].tolist() == [12, 12]
        assert arena.hops[rows].tolist() == [0, 0]
        assert arena.retries[rows].tolist() == [0, 0]
        assert arena.delivered_slot[rows].tolist() == [-1, -1]
        assert arena.status[rows].tolist() == [PacketStatus.IN_FLIGHT.code] * 2
        assert arena.n_live == 2

    def test_free_list_reuses_rows(self):
        arena = PacketArena()
        first = arena.alloc(np.array([0, 1, 2]), born_slot=0)
        arena.free(first)
        assert arena.n_live == 0
        second = arena.alloc(np.array([5, 6, 7]), born_slot=3)
        assert sorted(second.tolist()) == sorted(first.tolist())
        assert arena.source[second].tolist() == [5, 6, 7]

    def test_grows_past_initial_capacity(self):
        arena = PacketArena()
        rows = arena.alloc(np.arange(5000, dtype=np.int64), born_slot=0)
        assert np.unique(rows).size == 5000
        assert arena.n_live == 5000

    def test_record_snapshot(self):
        arena = PacketArena()
        (row,) = arena.alloc(np.array([9]), born_slot=4)
        arena.hops[row] = 2
        arena.delivered_slot[row] = 10
        arena.mark(np.array([row]), PacketStatus.DELIVERED)
        pkt = arena.record(int(row))
        assert pkt.source == 9
        assert pkt.born_slot == 4
        assert pkt.hops == 2
        assert pkt.status is PacketStatus.DELIVERED
        assert pkt.latency() == 6

    def test_latencies(self):
        arena = PacketArena()
        rows = arena.alloc(np.array([0, 1]), born_slot=2)
        arena.delivered_slot[rows] = [5, 9]
        assert arena.latencies(rows).tolist() == [3, 7]


class TestLatencyReservoir:
    def test_exact_below_capacity(self):
        r = LatencyReservoir(capacity=10)
        r.add_many(np.array([3, 1, 4]))
        r.add(5)
        assert sorted(r.values.tolist()) == [1, 3, 4, 5]
        assert r.count == 4
        assert len(r) == 4

    def test_bounded_above_capacity(self):
        r = LatencyReservoir(capacity=8)
        r.add_many(np.arange(1000, dtype=np.int64))
        assert len(r) == 8
        assert r.count == 1000
        assert set(r.values.tolist()) <= set(range(1000))

    def test_deterministic(self):
        a, b = LatencyReservoir(capacity=8), LatencyReservoir(capacity=8)
        for res in (a, b):
            res.add_many(np.arange(500, dtype=np.int64))
        assert a == b

    def test_batch_matches_scalar_sequence(self):
        a, b = LatencyReservoir(capacity=16), LatencyReservoir(capacity=16)
        data = np.arange(300, dtype=np.int64)
        a.add_many(data)
        for x in data:
            b.add(int(x))
        assert a == b

    def test_merge_exact_when_fits(self):
        a, b = LatencyReservoir(capacity=32), LatencyReservoir(capacity=32)
        a.add_many(np.array([1, 2]))
        b.add_many(np.array([3]))
        a.merge(b)
        assert sorted(a.values.tolist()) == [1, 2, 3]
        assert a.count == 3


class TestPacketStatsBatch:
    def test_record_deliveries_matches_scalar(self):
        a, b = PacketStats(generated=4), PacketStats(generated=4)
        a.record_deliveries(np.array([2, 3, 4]), np.array([1, 1, 2]))
        for lat, hops in ((2, 1), (3, 1), (4, 2)):
            b.record_delivery(lat, hops)
        assert a.delivered == b.delivered
        assert a.total_latency_slots == b.total_latency_slots
        assert a.total_hops == b.total_hops
        assert a.latencies == b.latencies

    def test_record_deliveries_rejects_negative(self):
        with pytest.raises(ValueError):
            PacketStats().record_deliveries(np.array([1, -2]), np.array([1, 1]))
