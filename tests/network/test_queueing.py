"""Tests for the array-backed queueing substrate: the cluster-head
ring-buffer bank and the arena-threaded source buffers."""

import numpy as np
import pytest

from repro.network.packet import PacketArena
from repro.network.queueing import QueueBank, SourceBuffers


def make_bank(heads, capacity, n_nodes=10):
    return QueueBank(np.asarray(heads), capacity, n_nodes)


def offer(bank, positions, rows):
    return bank.offer_batch(
        np.asarray(positions, dtype=np.int64),
        np.asarray(rows, dtype=np.int64),
    )


class TestQueueBank:
    def test_fifo_order(self):
        bank = make_bank([3], capacity=5)
        offer(bank, [0, 0], [11, 22])
        _, served = bank.serve_batch(2)
        assert served.tolist() == [11, 22]

    def test_offer_beyond_capacity_rejects(self):
        bank = make_bank([3], capacity=1)
        accepted = offer(bank, [0, 0], [11, 22])
        assert accepted.tolist() == [True, False]
        assert bank.queue_length(3) == 1

    def test_zero_capacity_rejects_everything(self):
        bank = make_bank([3], capacity=0)
        accepted = offer(bank, [0], [11])
        assert accepted.tolist() == [False]
        assert bank.total_queued == 0

    def test_serve_limited_per_queue(self):
        bank = make_bank([3, 7], capacity=10)
        offer(bank, [0, 0, 0, 1, 1], [1, 2, 3, 4, 5])
        pos, served = bank.serve_batch(2)
        assert pos.tolist() == [0, 0, 1, 1]
        assert served.tolist() == [1, 2, 4, 5]
        assert bank.lengths.tolist() == [1, 0]

    def test_serve_mask_skips_queues(self):
        bank = make_bank([3, 7], capacity=10)
        offer(bank, [0, 1], [1, 2])
        pos, served = bank.serve_batch(5, serve_mask=np.array([True, False]))
        assert pos.tolist() == [0]
        assert served.tolist() == [1]
        assert bank.queue_length(7) == 1

    def test_serve_rejects_negative(self):
        with pytest.raises(ValueError):
            make_bank([1], 2).serve_batch(-1)

    def test_drain_empties(self):
        bank = make_bank([3], capacity=10)
        offer(bank, [0, 0, 0], [1, 2, 3])
        _, drained = bank.drain_all()
        assert drained.tolist() == [1, 2, 3]
        assert bank.total_queued == 0

    def test_peak_length_tracks_high_water(self):
        bank = make_bank([3], capacity=10)
        offer(bank, [0, 0, 0, 0], [1, 2, 3, 4])
        bank.serve_batch(4)
        offer(bank, [0], [5])
        assert bank.peak_lengths.tolist() == [4]

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            make_bank([1], -1)

    def test_contains_and_position(self):
        bank = make_bank([3, 5], capacity=4)
        assert 3 in bank and 5 in bank and 7 not in bank
        assert bank.position(np.array([3, 5, 7])).tolist() == [0, 1, -1]

    def test_queue_length_unknown_head_is_zero(self):
        bank = make_bank([1], capacity=1)
        assert bank.queue_length(99) == 0

    def test_total_queued(self):
        bank = make_bank([1, 2], capacity=5)
        offer(bank, [0, 1, 1], [10, 20, 30])
        assert bank.total_queued == 3

    def test_numpy_int_keys(self):
        bank = make_bank(np.array([4, 6]), capacity=2)
        assert 4 in bank
        assert bank.queue_length(np.int64(4)) == 0

    def test_ring_wraps_and_widens(self):
        """Interleaved offer/serve cycles wrap the ring; deep backlog
        forces a widen past the lazy initial width — FIFO order must
        survive both."""
        bank = make_bank([0], capacity=500, n_nodes=3)
        expected = []
        next_id = 0
        for _ in range(40):
            batch = list(range(next_id, next_id + 7))
            next_id += 7
            assert offer(bank, [0] * 7, batch).all()
            expected.extend(batch)
            _, served = bank.serve_batch(3)
            assert served.tolist() == expected[:3]
            expected = expected[3:]
        _, rest = bank.drain_all()
        assert rest.tolist() == expected

    def test_per_batch_contention_is_rank_ordered(self):
        """Earlier entries in one offer batch win the last capacity
        slots (the engine feeds batches in canonical sender order)."""
        bank = make_bank([0, 1], capacity=2)
        accepted = offer(bank, [0, 0, 0, 1], [1, 2, 3, 4])
        assert accepted.tolist() == [True, True, False, True]

    def test_empty_bank(self):
        bank = make_bank([], capacity=4)
        assert bank.k == 0
        accepted = offer(bank, [], [])
        assert accepted.size == 0
        pos, served = bank.serve_batch(3)
        assert pos.size == 0 and served.size == 0


class TestSourceBuffers:
    def test_push_peek_pop_fifo(self):
        arena = PacketArena()
        bufs = SourceBuffers(4, arena)
        rows = arena.alloc(np.array([2, 2, 3]), born_slot=0)
        bufs.push_batch(np.array([2, 2, 3]), rows)
        assert bufs.lengths.tolist() == [0, 0, 2, 1]
        assert bufs.peek(np.array([2, 3])).tolist() == [rows[0], rows[2]]
        popped = bufs.pop(np.array([2, 3]))
        assert popped.tolist() == [rows[0], rows[2]]
        assert bufs.lengths.tolist() == [0, 0, 1, 0]
        assert bufs.indices(2) == [int(rows[1])]

    def test_push_appends_to_existing_chain(self):
        arena = PacketArena()
        bufs = SourceBuffers(2, arena)
        first = arena.alloc(np.array([0]), born_slot=0)
        bufs.push_batch(np.array([0]), first)
        more = arena.alloc(np.array([0, 0]), born_slot=1)
        bufs.push_batch(np.array([0, 0]), more)
        assert bufs.indices(0) == [int(first[0]), int(more[0]), int(more[1])]

    def test_pop_to_empty_resets_tail(self):
        arena = PacketArena()
        bufs = SourceBuffers(1, arena)
        row = arena.alloc(np.array([0]), born_slot=0)
        bufs.push_batch(np.array([0]), row)
        bufs.pop(np.array([0]))
        assert bufs.total == 0
        again = arena.alloc(np.array([0]), born_slot=5)
        bufs.push_batch(np.array([0]), again)
        assert bufs.indices(0) == [int(again[0])]
