"""Tests for the finite cluster-head FIFO queues."""

import pytest

from repro.network.packet import PacketRecord, PacketStatus
from repro.network.queueing import CHQueue, QueueBank


def pkt(i=0):
    return PacketRecord(source=i, born_slot=0)


class TestCHQueue:
    def test_fifo_order(self):
        q = CHQueue(capacity=5)
        first, second = pkt(1), pkt(2)
        q.offer(first)
        q.offer(second)
        assert q.serve(2) == [first, second]

    def test_offer_beyond_capacity_drops(self):
        q = CHQueue(capacity=1)
        assert q.offer(pkt())
        overflow = pkt()
        assert not q.offer(overflow)
        assert overflow.status is PacketStatus.DROPPED_QUEUE
        assert q.drops == 1

    def test_zero_capacity_drops_everything(self):
        q = CHQueue(capacity=0)
        assert not q.offer(pkt())
        assert len(q) == 0

    def test_serve_limited(self):
        q = CHQueue(capacity=10)
        for i in range(6):
            q.offer(pkt(i))
        assert len(q.serve(4)) == 4
        assert len(q) == 2

    def test_serve_rejects_negative(self):
        with pytest.raises(ValueError):
            CHQueue(2).serve(-1)

    def test_drain_empties(self):
        q = CHQueue(capacity=10)
        for i in range(3):
            q.offer(pkt(i))
        drained = q.drain()
        assert len(drained) == 3
        assert len(q) == 0

    def test_peak_length_tracks_high_water(self):
        q = CHQueue(capacity=10)
        for i in range(4):
            q.offer(pkt(i))
        q.serve(4)
        q.offer(pkt())
        assert q.peak_length == 4

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            CHQueue(-1)


class TestQueueBank:
    def test_contains_and_getitem(self):
        bank = QueueBank([3, 5], capacity=4)
        assert 3 in bank and 5 in bank and 7 not in bank
        assert isinstance(bank[3], CHQueue)

    def test_total_drops(self):
        bank = QueueBank([1], capacity=1)
        bank[1].offer(pkt())
        bank[1].offer(pkt())
        assert bank.total_drops == 1

    def test_queue_length_unknown_head_is_zero(self):
        bank = QueueBank([1], capacity=1)
        assert bank.queue_length(99) == 0

    def test_total_queued(self):
        bank = QueueBank([1, 2], capacity=5)
        bank[1].offer(pkt())
        bank[2].offer(pkt())
        bank[2].offer(pkt())
        assert bank.total_queued == 3

    def test_numpy_int_keys(self):
        import numpy as np

        bank = QueueBank(np.array([4, 6]), capacity=2)
        assert 4 in bank
        assert bank.queue_length(np.int64(4)) == 0
