"""Tests for the mobility models and their engine integration."""

import numpy as np
import pytest

from repro.core import QLECProtocol
from repro.network.mobility import (
    GaussMarkov,
    MobilityConfig,
    RandomWaypoint,
    build_mobility,
)
from repro.simulation.engine import run_simulation
from tests.conftest import make_config

SIDE = 100.0


def start_positions(n=30, seed=0):
    return np.random.default_rng(seed).uniform(0, SIDE, size=(n, 3))


class TestMobilityConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MobilityConfig(model="teleport")
        with pytest.raises(ValueError):
            MobilityConfig(speed=-1.0)
        with pytest.raises(ValueError):
            MobilityConfig(memory=1.0)
        with pytest.raises(ValueError):
            MobilityConfig(pause_rounds=-1)

    def test_build_dispatch(self):
        rng = np.random.default_rng(0)
        assert isinstance(
            build_mobility(MobilityConfig(model="random_waypoint"), SIDE, rng),
            RandomWaypoint,
        )
        assert isinstance(
            build_mobility(MobilityConfig(model="gauss_markov"), SIDE, rng),
            GaussMarkov,
        )


class TestRandomWaypoint:
    def test_moves_nodes(self):
        model = RandomWaypoint(SIDE, np.random.default_rng(1), speed=5.0)
        pos = start_positions()
        new = model.step(pos, np.ones(30, dtype=bool))
        assert not np.allclose(new, pos)

    def test_step_bounded_by_speed(self):
        model = RandomWaypoint(SIDE, np.random.default_rng(1), speed=5.0)
        pos = start_positions()
        new = model.step(pos, np.ones(30, dtype=bool))
        step = np.linalg.norm(new - pos, axis=1)
        assert np.all(step <= 5.0 * 1.5 + 1e-9)

    def test_stays_in_volume(self):
        model = RandomWaypoint(SIDE, np.random.default_rng(2), speed=20.0)
        pos = start_positions()
        moving = np.ones(30, dtype=bool)
        for _ in range(50):
            pos = model.step(pos, moving)
            assert np.all((pos >= 0.0) & (pos <= SIDE))

    def test_dead_nodes_hold_position(self):
        model = RandomWaypoint(SIDE, np.random.default_rng(3), speed=5.0)
        pos = start_positions()
        moving = np.ones(30, dtype=bool)
        moving[:10] = False
        new = model.step(pos, moving)
        np.testing.assert_array_equal(new[:10], pos[:10])

    def test_eventually_reaches_waypoints(self):
        """Over many steps a node visits multiple waypoints (its target
        array changes)."""
        model = RandomWaypoint(SIDE, np.random.default_rng(4), speed=30.0)
        pos = start_positions(n=5)
        moving = np.ones(5, dtype=bool)
        pos = model.step(pos, moving)
        first_targets = model._targets.copy()
        for _ in range(30):
            pos = model.step(pos, moving)
        assert not np.allclose(model._targets, first_targets)

    def test_zero_speed_freezes(self):
        model = RandomWaypoint(SIDE, np.random.default_rng(5), speed=0.0)
        pos = start_positions()
        new = model.step(pos, np.ones(30, dtype=bool))
        np.testing.assert_allclose(new, pos)


class TestGaussMarkov:
    def test_stays_in_volume(self):
        model = GaussMarkov(SIDE, np.random.default_rng(6), speed=15.0)
        pos = start_positions()
        moving = np.ones(30, dtype=bool)
        for _ in range(50):
            pos = model.step(pos, moving)
            assert np.all((pos >= 0.0) & (pos <= SIDE))

    def test_velocity_correlated(self):
        """High-memory model: consecutive displacements point the same
        way more often than not."""
        model = GaussMarkov(SIDE, np.random.default_rng(7), speed=3.0, memory=0.95)
        pos = np.full((200, 3), SIDE / 2)
        moving = np.ones(200, dtype=bool)
        p1 = model.step(pos, moving)
        d1 = p1 - pos
        p2 = model.step(p1, moving)
        d2 = p2 - p1
        cos = np.einsum("ij,ij->i", d1, d2) / (
            np.linalg.norm(d1, axis=1) * np.linalg.norm(d2, axis=1) + 1e-12
        )
        assert cos.mean() > 0.5

    def test_dead_nodes_hold_position(self):
        model = GaussMarkov(SIDE, np.random.default_rng(8), speed=5.0)
        pos = start_positions()
        moving = np.zeros(30, dtype=bool)
        np.testing.assert_array_equal(model.step(pos, moving), pos)


class TestEngineIntegration:
    def test_positions_change_during_run(self):
        config = make_config(seed=1).replace(
            mobility=MobilityConfig(speed=10.0)
        )
        from repro.simulation.engine import SimulationEngine

        engine = SimulationEngine(config, QLECProtocol())
        before = engine.state.nodes.positions.copy()
        engine.run()
        assert not np.allclose(engine.state.nodes.positions, before)

    def test_mobile_run_keeps_invariants(self):
        config = make_config(seed=2).replace(
            mobility=MobilityConfig(model="gauss_markov", speed=8.0)
        )
        result = run_simulation(config, QLECProtocol())
        result.validate()

    def test_static_config_keeps_positions(self):
        from repro.simulation.engine import SimulationEngine

        engine = SimulationEngine(make_config(seed=3), QLECProtocol())
        before = engine.state.nodes.positions.copy()
        engine.run()
        np.testing.assert_array_equal(engine.state.nodes.positions, before)
