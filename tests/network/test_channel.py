"""Tests for the lossy channel and the ACK-ratio link estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RadioConfig
from repro.energy.radio import FirstOrderRadio
from repro.network.channel import Channel, LinkEstimator, delivery_probability

D0 = RadioConfig().d0


class TestDeliveryProbability:
    def test_certain_at_zero_distance(self):
        assert delivery_probability(0.0, D0) == pytest.approx(1.0)

    def test_half_at_knee(self):
        floor = 0.05
        p = delivery_probability(2 * D0, D0, floor=floor)
        assert p == pytest.approx(floor + (1 - floor) / 2)

    def test_approaches_floor_far_out(self):
        p = delivery_probability(100 * D0, D0, floor=0.05)
        assert p == pytest.approx(0.05, abs=1e-3)

    def test_vector_matches_scalar(self):
        ds = np.array([0.0, 50.0, 100.0, 500.0])
        vec = delivery_probability(ds, D0)
        scal = [delivery_probability(float(d), D0) for d in ds]
        np.testing.assert_allclose(vec, scal)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            delivery_probability(10.0, 0.0)
        with pytest.raises(ValueError):
            delivery_probability(10.0, D0, floor=1.0)
        with pytest.raises(ValueError):
            delivery_probability(-1.0, D0)

    @given(
        st.floats(min_value=0.0, max_value=5000.0),
        st.floats(min_value=0.0, max_value=5000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_decreasing(self, d1, d2):
        lo, hi = sorted((d1, d2))
        assert delivery_probability(lo, D0) >= delivery_probability(hi, D0) - 1e-12

    @given(st.floats(min_value=0.0, max_value=1e5))
    @settings(max_examples=50, deadline=None)
    def test_is_a_probability(self, d):
        p = delivery_probability(d, D0)
        assert 0.0 <= p <= 1.0


class TestChannel:
    def make(self, seed=0, blackout=False):
        return Channel(
            FirstOrderRadio(), np.random.default_rng(seed), blackout=blackout
        )

    def test_short_links_almost_always_succeed(self):
        ch = self.make()
        outcomes = [ch.attempt(5.0) for _ in range(300)]
        assert np.mean(outcomes) > 0.95

    def test_empirical_rate_matches_probability(self):
        ch = self.make(seed=3)
        d = 2 * D0
        p = ch.success_probability(d)
        outcomes = ch.attempt_many(np.full(20_000, d))
        assert outcomes.mean() == pytest.approx(p, abs=0.02)

    def test_blackout_fails_everything(self):
        ch = self.make(blackout=True)
        assert not ch.attempt(0.0)
        assert not ch.attempt_many(np.zeros(10)).any()

    def test_attempt_many_shape(self):
        ch = self.make()
        assert ch.attempt_many(np.zeros((3, 2))).shape == (3, 2)


class TestLinkEstimator:
    def test_starts_optimistic(self):
        est = LinkEstimator(3, 4)
        assert est.get(0, 0) == 1.0

    def test_ewma_update(self):
        est = LinkEstimator(2, 2, alpha=0.5)
        est.update(0, 1, False)
        assert est.get(0, 1) == pytest.approx(0.5)
        est.update(0, 1, True)
        assert est.get(0, 1) == pytest.approx(0.75)

    def test_pair_mode_is_private(self):
        est = LinkEstimator(2, 2, alpha=0.5, shared=False)
        est.update(0, 1, False)
        assert est.get(1, 1) == 1.0

    def test_shared_mode_broadcasts(self):
        est = LinkEstimator(3, 2, alpha=0.5, shared=True)
        est.update(0, 1, False)
        assert est.get(1, 1) == pytest.approx(0.5)
        assert est.get(2, 1) == pytest.approx(0.5)
        # Other targets untouched.
        assert est.get(1, 0) == 1.0

    def test_converges_to_true_rate(self):
        rng = np.random.default_rng(0)
        est = LinkEstimator(1, 1, alpha=0.05)
        for _ in range(2000):
            est.update(0, 0, bool(rng.random() < 0.3))
        assert est.get(0, 0) == pytest.approx(0.3, abs=0.12)

    def test_row_view_read_only(self):
        est = LinkEstimator(2, 3)
        with pytest.raises(ValueError):
            est.row(0)[0] = 0.0
        with pytest.raises(ValueError):
            est.estimates[0, 0] = 0.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LinkEstimator(0, 1)
        with pytest.raises(ValueError):
            LinkEstimator(1, 1, alpha=0.0)
        with pytest.raises(ValueError):
            LinkEstimator(1, 1, initial=1.5)
