"""Tests for the 3-D deployment generators."""

import numpy as np
import pytest

from repro.config import DeploymentConfig
from repro.network.deployment import (
    deploy,
    from_positions,
    mountain_terrain,
    underwater_column,
    uniform_cube,
)


class TestUniformCube:
    def test_positions_inside_cube(self):
        nodes, _ = uniform_cube(200, 50.0, 1.0, rng=0)
        assert np.all(nodes.positions >= 0.0)
        assert np.all(nodes.positions <= 50.0)

    def test_bs_defaults_to_centre(self):
        _, bs = uniform_cube(10, 100.0, 1.0, rng=0)
        assert bs.position == (50.0, 50.0, 50.0)

    def test_explicit_bs(self):
        _, bs = uniform_cube(10, 100.0, 1.0, rng=0, bs_position=(0.0, 0.0, 0.0))
        assert bs.position == (0.0, 0.0, 0.0)

    def test_reproducible_with_seed(self):
        a, _ = uniform_cube(20, 10.0, 1.0, rng=42)
        b, _ = uniform_cube(20, 10.0, 1.0, rng=42)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_different_seeds_differ(self):
        a, _ = uniform_cube(20, 10.0, 1.0, rng=1)
        b, _ = uniform_cube(20, 10.0, 1.0, rng=2)
        assert not np.array_equal(a.positions, b.positions)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            uniform_cube(0, 10.0, 1.0)
        with pytest.raises(ValueError):
            uniform_cube(5, -1.0, 1.0)

    def test_accepts_generator_instance(self):
        gen = np.random.default_rng(7)
        nodes, _ = uniform_cube(5, 10.0, 1.0, rng=gen)
        assert nodes.n == 5


class TestMountainTerrain:
    def test_heights_follow_peaks(self):
        nodes, bs = mountain_terrain(300, 100.0, 1.0, rng=3)
        z = nodes.positions[:, 2]
        assert z.max() > z.min()  # actual relief
        assert np.all(z >= 0.0) and np.all(z <= 100.0)

    def test_bs_on_summit(self):
        nodes, bs = mountain_terrain(300, 100.0, 1.0, rng=3)
        assert bs.position[2] >= nodes.positions[:, 2].max()

    def test_rejects_bad_roughness(self):
        with pytest.raises(ValueError):
            mountain_terrain(10, 100.0, 1.0, roughness=1.0)

    def test_rejects_zero_peaks(self):
        with pytest.raises(ValueError):
            mountain_terrain(10, 100.0, 1.0, n_peaks=0)


class TestUnderwaterColumn:
    def test_surface_bias(self):
        nodes, _ = underwater_column(500, 100.0, 1.0, rng=5, surface_bias=3.0)
        z = nodes.positions[:, 2]
        # More than half the instruments in the upper half of the column.
        assert (z > 50.0).mean() > 0.5

    def test_bs_is_surface_buoy(self):
        _, bs = underwater_column(10, 80.0, 1.0, rng=5)
        assert bs.position == (40.0, 40.0, 80.0)

    def test_rejects_bad_bias(self):
        with pytest.raises(ValueError):
            underwater_column(10, 80.0, 1.0, surface_bias=0.0)


class TestFromPositionsAndDeploy:
    def test_from_positions_passthrough(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
        nodes, bs = from_positions(pos, [1.0, 2.0], (5.0, 5.0, 5.0))
        np.testing.assert_array_equal(nodes.positions, pos)
        assert bs.position == (5.0, 5.0, 5.0)

    def test_deploy_uses_config(self):
        cfg = DeploymentConfig(n_nodes=7, side=30.0, initial_energy=0.5)
        nodes, bs = deploy(cfg, rng=0)
        assert nodes.n == 7
        assert bs.position == (15.0, 15.0, 15.0)
        assert np.all(nodes.initial_energy == 0.5)


class TestHeterogeneousDeployment:
    def test_homogeneous_by_default(self):
        import numpy as np

        from repro.network.deployment import deploy

        cfg = DeploymentConfig(n_nodes=20, initial_energy=0.5)
        nodes, _ = deploy(cfg, rng=0)
        assert np.all(nodes.initial_energy == 0.5)

    def test_advanced_nodes_get_boosted_battery(self):
        import numpy as np

        from repro.network.deployment import deploy

        cfg = DeploymentConfig(
            n_nodes=50, initial_energy=0.2,
            advanced_fraction=0.2, advanced_factor=1.5,
        )
        nodes, _ = deploy(cfg, rng=1)
        boosted = np.isclose(nodes.initial_energy, 0.5)
        normal = np.isclose(nodes.initial_energy, 0.2)
        assert boosted.sum() == 10
        assert normal.sum() == 40

    def test_fraction_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            DeploymentConfig(advanced_fraction=1.5)
        with _pytest.raises(ValueError):
            DeploymentConfig(advanced_factor=-1.0)

    def test_heterogeneous_energies_helper(self):
        import numpy as np

        from repro.network.deployment import heterogeneous_energies

        cfg = DeploymentConfig(
            n_nodes=10, initial_energy=1.0,
            advanced_fraction=0.5, advanced_factor=1.0,
        )
        e = heterogeneous_energies(cfg, np.random.default_rng(2))
        assert sorted(set(np.round(e, 6).tolist())) == [1.0, 2.0]
