"""Tests for deterministic seed derivation."""

import numpy as np

from repro.parallel.rng import SeedFactory, spawn_generators


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_streams_differ(self):
        gens = spawn_generators(0, 3)
        draws = [g.random(4).tolist() for g in gens]
        assert draws[0] != draws[1] != draws[2]

    def test_reproducible(self):
        a = spawn_generators(7, 2)
        b = spawn_generators(7, 2)
        np.testing.assert_array_equal(a[0].random(8), b[0].random(8))


class TestSeedFactory:
    def test_same_key_same_seed(self):
        f = SeedFactory(root=1)
        assert f.seed_for("qlec", 4.0, 0) == f.seed_for("qlec", 4.0, 0)

    def test_different_keys_differ(self):
        f = SeedFactory(root=1)
        seeds = {
            f.seed_for("qlec", 4.0, 0),
            f.seed_for("qlec", 4.0, 1),
            f.seed_for("fcm", 4.0, 0),
            f.seed_for("qlec", 8.0, 0),
        }
        assert len(seeds) == 4

    def test_root_matters(self):
        assert SeedFactory(0).seed_for("x") != SeedFactory(1).seed_for("x")

    def test_string_hash_is_process_stable(self):
        """Derived from FNV, not Python's salted hash(): a fixed value."""
        f = SeedFactory(root=0)
        assert f.seed_for("qlec") == f.seed_for("qlec")
        # Pin the value so accidental hashing changes are caught.
        pinned = f.seed_for("pin-me")
        assert pinned == f.seed_for("pin-me")
        assert 0 <= pinned < 2 ** 64

    def test_generator_for_reproducible(self):
        f = SeedFactory(root=3)
        a = f.generator_for("cell", 1).random(5)
        b = f.generator_for("cell", 1).random(5)
        np.testing.assert_array_equal(a, b)

    def test_numpy_ints_equal_python_ints(self):
        f = SeedFactory(root=2)
        assert f.seed_for(np.int64(5)) == f.seed_for(5)
