"""Unit tests for the work-stealing lease scheduler state machine.

These drive :class:`repro.parallel.scheduler.SweepScheduler` directly —
no processes, injected clock — so every lifecycle transition (lease,
steal, requeue, reclaim, duplicate, exhaustion) is pinned in isolation.
The process driver's integration surface lives in
``test_scheduler_chaos.py``; the exactly-once guarantee under random
interleavings in ``test_scheduler_properties.py``.
"""

import pytest

from repro.parallel.scheduler import (
    SCHED_EVENT_KIND,
    SweepScheduler,
    run_scheduled,
    scheduler_events_path,
)
from repro.parallel.sharding import (
    CELL_ERROR_KIND,
    CELL_KIND,
    SweepCell,
    SweepSpec,
    load_artifact,
    partition_cells,
)
from repro.telemetry.jsonl import read_jsonl_tolerant


def make_cells(n: int) -> list[SweepCell]:
    """Synthetic grid cells with real (hash-derived) stable IDs."""
    return [
        SweepCell.build("proto", float(i), i, f"{i:016x}") for i in range(n)
    ]


def drain(sched: SweepScheduler, worker="w0", index=0, now=0.0):
    """Run every remaining cell to completion through one worker."""
    while True:
        cell = sched.acquire(worker, index, now)
        if cell is None:
            return
        sched.complete(worker, cell.cell_id, {"v": cell.seed}, 1, now)


class TestConstruction:
    def test_home_queues_match_partition(self):
        cells = make_cells(7)
        sched = SweepScheduler(cells, 3)
        expected = [
            [c.cell_id for c in q] for q in partition_cells(cells, 3)
        ]
        assert [list(q) for q in sched.queues] == expected

    def test_validation(self):
        cells = make_cells(2)
        with pytest.raises(ValueError, match="num_queues"):
            SweepScheduler(cells, 0)
        with pytest.raises(ValueError, match="lease_seconds"):
            SweepScheduler(cells, 1, lease_seconds=0)
        with pytest.raises(ValueError, match="max_lease_attempts"):
            SweepScheduler(cells, 1, max_lease_attempts=0)
        with pytest.raises(ValueError, match="duplicate"):
            SweepScheduler(cells + cells[:1], 1)


class TestLeaseLifecycle:
    def test_acquire_complete_exactly_once(self):
        cells = make_cells(4)
        sched = SweepScheduler(cells, 2)
        drain(sched)
        assert sched.finished
        assert set(sched.rows) == {c.cell_id for c in cells}
        assert not sched.errors
        sched.check_invariants()

    def test_worker_cannot_hold_two_leases(self):
        sched = SweepScheduler(make_cells(3), 1)
        sched.acquire("w0", 0, 0.0)
        with pytest.raises(ValueError, match="already holds"):
            sched.acquire("w0", 0, 0.0)

    def test_acquire_exhausted_returns_none(self):
        sched = SweepScheduler(make_cells(1), 1)
        cell = sched.acquire("w0", 0, 0.0)
        assert sched.acquire("w1", 0, 0.0) is None  # only cell is leased
        sched.complete("w0", cell.cell_id, {}, 1, 0.0)
        assert sched.acquire("w1", 0, 0.0) is None  # grid finished

    def test_steal_takes_from_back_of_longest_queue(self):
        cells = make_cells(9)
        sched = SweepScheduler(cells, 3)
        # Drain w0's home queue in owner order (front first)...
        home = [c.cell_id for c in partition_cells(cells, 3)[0]]
        for expected_id in home:
            cell = sched.acquire("w0", 0, 0.0)
            assert cell.cell_id == expected_id
            sched.complete("w0", cell.cell_id, {}, 1, 0.0)
        # ...then lease one cell off queue 1 so queue 2 is strictly
        # longest: the steal must take queue 2's *back* element.
        sched.acquire("w1", 1, 0.0)
        expected = sched.queues[2][-1]
        cell = sched.acquire("w0", 0, 0.0)
        assert cell.cell_id == expected
        assert sched.leases[cell.cell_id].stolen
        assert sched.steals == 1
        sched.check_invariants()

    def test_heartbeat_extends_deadline(self):
        sched = SweepScheduler(make_cells(1), 1, lease_seconds=10.0)
        cell = sched.acquire("w0", 0, 0.0)
        assert sched.leases[cell.cell_id].deadline == 10.0
        sched.heartbeat("w0", 5.0)
        assert sched.leases[cell.cell_id].deadline == 15.0


class TestFailures:
    def test_deterministic_failure_is_final_and_never_requeued(self):
        sched = SweepScheduler(make_cells(1), 1, max_lease_attempts=3)
        cell = sched.acquire("w0", 0, 0.0)
        record = sched.fail(
            "w0", cell.cell_id,
            {"type": "ValueError", "message": "bad", "class": "deterministic"},
            1, 0.0,
        )
        assert record is not None
        assert record["kind"] == CELL_ERROR_KIND
        assert sched.finished
        assert not any(e["event"] == "requeue" for e in sched.events)
        sched.check_invariants()

    def test_transient_failure_requeues_until_exhausted(self):
        sched = SweepScheduler(make_cells(1), 1, max_lease_attempts=3)
        err = {"type": "OSError", "message": "flaky", "class": "transient"}
        for attempt in (1, 2):
            cell = sched.acquire("w0", 0, 0.0)
            assert sched.leases[cell.cell_id].attempt == attempt
            assert sched.fail("w0", cell.cell_id, err, 1, 0.0) is None
            sched.check_invariants()
        cell = sched.acquire("w0", 0, 0.0)
        record = sched.fail("w0", cell.cell_id, err, 1, 0.0)
        assert record is not None and sched.finished
        requeues = [e for e in sched.events if e["event"] == "requeue"]
        assert len(requeues) == 2

    def test_stale_failure_report_is_dropped(self):
        # w0's lease expires and the cell re-queues; w0's late failure
        # report must not queue the cell a second time.
        sched = SweepScheduler(make_cells(1), 1, lease_seconds=1.0)
        cell = sched.acquire("w0", 0, 0.0)
        assert sched.reclaim_expired(2.0) == [cell.cell_id]
        err = {"type": "OSError", "message": "late", "class": "transient"}
        assert sched.fail("w0", cell.cell_id, err, 1, 2.5) is None
        assert [e["event"] for e in sched.events if e["event"] == (
            "stale-failure"
        )] == ["stale-failure"]
        sched.check_invariants()
        # The requeued cell is still runnable exactly once.
        again = sched.acquire("w1", 0, 3.0)
        assert again.cell_id == cell.cell_id
        assert sched.acquire("w2", 0, 3.0) is None

    def test_unknown_cell_rejected(self):
        sched = SweepScheduler(make_cells(1), 1)
        with pytest.raises(ValueError, match="unknown cell"):
            sched.complete("w0", "f" * 16, {}, 1, 0.0)
        with pytest.raises(ValueError, match="unknown cell"):
            sched.fail("w0", "f" * 16, {}, 1, 0.0)


class TestReclaim:
    def test_worker_lost_requeues_its_cell(self):
        sched = SweepScheduler(make_cells(2), 1)
        cell = sched.acquire("w0", 0, 0.0)
        sched.worker_lost("w0", 1.0)
        assert sched.reclaims == 1
        assert cell.cell_id not in sched.leases
        sched.check_invariants()
        # Another worker picks the cell back up.
        ids = set()
        while (got := sched.acquire("w1", 0, 2.0)) is not None:
            ids.add(got.cell_id)
            sched.complete("w1", got.cell_id, {}, 1, 2.0)
        assert cell.cell_id in ids and sched.finished

    def test_worker_lost_without_lease_is_recorded_only(self):
        sched = SweepScheduler(make_cells(1), 1)
        sched.worker_lost("w9", 0.0)
        assert sched.reclaims == 0
        assert [e["event"] for e in sched.events] == ["worker-dead"]

    def test_reclaim_exhaustion_synthesises_error_row(self):
        sched = SweepScheduler(make_cells(1), 1, max_lease_attempts=2)
        for _ in range(2):
            cell = sched.acquire("w0", 0, 0.0)
            sched.worker_lost("w0", 1.0)
        assert sched.finished
        record = sched.errors[cell.cell_id]
        assert record["error"]["type"] == "LeaseExhausted"
        assert record["error"]["class"] == "transient"
        sched.check_invariants()

    def test_late_result_after_reclaim_accepted_once(self):
        # The original worker was slow, not dead: its result arrives
        # after the reclaim but before the re-leased twin finishes.
        # First result wins; the twin's copy is a counted duplicate.
        sched = SweepScheduler(make_cells(1), 2, lease_seconds=1.0)
        cell = sched.acquire("w0", 0, 0.0)
        sched.reclaim_expired(2.0)
        again = sched.acquire("w1", 1, 2.0)
        assert again.cell_id == cell.cell_id
        assert sched.complete("w0", cell.cell_id, {"v": 1}, 1, 2.5) is not None
        assert sched.complete("w1", cell.cell_id, {"v": 1}, 1, 3.0) is None
        assert sched.duplicates == 1
        assert len(sched.rows) == 1
        sched.check_invariants()


class TestPartialSweep:
    def test_rows_come_back_in_canonical_order(self):
        cells = make_cells(4)
        sched = SweepScheduler(cells, 2)
        # Finish cells in scrambled order; the partial merge must still
        # come back in grid-enumeration order.
        for i in (2, 0, 3, 1):
            sched.complete("w0", cells[i].cell_id, {"seed": i}, 1, 0.0)
        rows, errors, missing = sched.partial_sweep()
        assert [r["seed"] for r in rows] == [0, 1, 2, 3]
        assert not errors and not missing

    def test_missing_lists_unfinished_cells(self):
        cells = make_cells(3)
        sched = SweepScheduler(cells, 1)
        got = sched.acquire("w0", 0, 0.0)
        sched.complete("w0", got.cell_id, {}, 1, 0.0)
        rows, errors, missing = sched.partial_sweep()
        assert len(rows) == 1 and len(missing) == 2


SPEC = SweepSpec(
    protocols=("direct",),
    lambdas=(4.0, 8.0),
    seeds=(0, 1),
    rounds=2,
    telemetry=True,
)


class TestRunScheduled:
    def test_artifact_is_mergeable_and_manifest_carries_provenance(
        self, tmp_path
    ):
        out = tmp_path / "sched.jsonl"
        result = run_scheduled(SPEC, out, num_workers=2, poll_seconds=0.02)
        assert result.ok and len(result.executed) == len(SPEC)
        art = load_artifact(out)
        assert (art.manifest["shard"], art.manifest["num_shards"]) == (0, 0)
        sched_block = art.manifest["scheduler"]
        assert sched_block["workers"] == 2
        assert sched_block["compression"] == "none"
        ids = [r["cell_id"] for r in art.cell_rows]
        assert len(ids) == len(set(ids)) == len(SPEC)

    def test_full_resume_leaves_bytes_untouched(self, tmp_path):
        out = tmp_path / "sched.jsonl"
        run_scheduled(SPEC, out, num_workers=2, poll_seconds=0.02)
        before = out.read_bytes()
        again = run_scheduled(SPEC, out, num_workers=2, poll_seconds=0.02)
        assert out.read_bytes() == before
        assert not again.executed
        assert len(again.skipped) == len(SPEC)

    def test_events_sidecar_is_schema_clean(self, tmp_path):
        out = tmp_path / "sched.jsonl"
        run_scheduled(SPEC, out, num_workers=2, poll_seconds=0.02)
        events = read_jsonl_tolerant(scheduler_events_path(out))
        assert events, "no scheduler events recorded"
        assert all(e["kind"] == SCHED_EVENT_KIND for e in events)
        assert [e["seq"] for e in events] == list(
            range(1, len(events) + 1)
        )
        completes = [e for e in events if e["event"] == "complete"]
        assert len(completes) == len(SPEC)

    def test_compressed_artifact_round_trips(self, tmp_path):
        out = tmp_path / "sched.jsonl.gz"
        result = run_scheduled(
            SPEC, out, num_workers=2, compression="gz", poll_seconds=0.02
        )
        assert result.ok
        art = load_artifact(out)
        assert len(art.cell_rows) == len(SPEC)
        assert art.manifest["scheduler"]["compression"] == "gz"
        # Resume keeps the sniffed codec without restating it.
        before = out.read_bytes()
        run_scheduled(SPEC, out, num_workers=2, poll_seconds=0.02)
        assert out.read_bytes() == before

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="retries"):
            run_scheduled(SPEC, tmp_path / "x.jsonl", retries=-1)


class TestTornTailResume:
    """Satellite: the resume path reads artifacts through the shared
    torn-tail-tolerant reader — a crash mid-append costs exactly the
    torn record, plain or compressed."""

    @pytest.mark.parametrize("codec,suffix", [("none", ""), ("gz", ".gz")])
    def test_truncated_final_row_recomputed_only(
        self, tmp_path, codec, suffix
    ):
        out = tmp_path / f"sched.jsonl{suffix}"
        run_scheduled(
            SPEC, out, num_workers=1,
            compression=codec, poll_seconds=0.02,
        )
        raw = out.read_bytes()
        # Tear the artifact mid final record (crash mid-append).
        out.write_bytes(raw[: len(raw) - 7])
        result = run_scheduled(
            SPEC, out, num_workers=1, poll_seconds=0.02
        )
        # The torn tail cost at most the trailer + final record; every
        # fully-written row resumed.
        assert len(result.skipped) >= len(SPEC) - 1
        art = load_artifact(out)
        ids = [r["cell_id"] for r in art.cell_rows]
        assert len(ids) == len(set(ids)) == len(SPEC)
        assert art.records[-1]["kind"] == "shard-telemetry"

    def test_interior_corruption_is_not_silently_healed(self, tmp_path):
        out = tmp_path / "sched.jsonl"
        run_scheduled(SPEC, out, num_workers=1, poll_seconds=0.02)
        lines = out.read_text().splitlines()
        lines[2] = "CORRUPTED"
        out.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="malformed JSONL"):
            load_artifact(out)
