"""Tests for the live shard-status sidecar (repro.parallel.status)."""

import json

import pytest

from repro.analysis.sweep import run_cell
from repro.parallel.sharding import SweepSpec, load_artifact, run_shard
from repro.parallel.status import (
    MAX_STATUS_ROWS,
    STATUS_KIND,
    ShardStatusWriter,
    find_status_files,
    load_status,
    shard_status_path,
)

SPEC = SweepSpec(
    protocols=("direct",),
    lambdas=(4.0, 8.0),
    seeds=(0, 1),
    rounds=2,
)


def _failing_cell(
    protocol, lam, seed, initial_energy, rounds, stop, telemetry,
    backend="auto", faults=None, equivalence="bitwise", max_block_mb=None,
    routing="direct",
):
    if seed == 1:
        raise RuntimeError("injected status-test fault")
    return run_cell(
        protocol, lam, seed,
        initial_energy=initial_energy, rounds=rounds,
        stop_on_death=stop, telemetry=telemetry, backend=backend,
        faults=faults, equivalence=equivalence, max_block_mb=max_block_mb,
        routing=routing,
    )


class TestWriterUnit:
    def _writer(self, tmp_path, **kwargs):
        ticks = iter(range(1000))
        return ShardStatusWriter(
            tmp_path / "shard.jsonl",
            spec_fingerprint="0" * 16,
            shard=1,
            num_shards=2,
            cells_total=kwargs.pop("cells_total", 4),
            clock=lambda: float(next(ticks)),
            wall=lambda: 1754650000.0,
            **kwargs,
        )

    def test_lifecycle_rows(self, tmp_path):
        w = self._writer(tmp_path)
        w.start()
        w.cell_finished()
        w.cell_finished(error=True, attempts=2)
        w.finish()
        rows = [
            json.loads(line)
            for line in w.path.read_text().splitlines()
        ]
        assert [r["state"] for r in rows] == (
            ["running", "running", "running", "complete"]
        )
        last = rows[-1]
        assert last["kind"] == STATUS_KIND
        assert last["done"] == 2
        assert last["failed"] == 1
        assert last["retried"] == 1
        assert last["ewma_cell_seconds"] is not None

    def test_eta_null_before_first_cell_zero_when_done(self, tmp_path):
        w = self._writer(tmp_path, cells_total=1)
        w.start()
        assert load_status(w.path)["eta_seconds"] is None
        w.cell_finished()
        assert load_status(w.path)["eta_seconds"] == 0.0

    def test_resumed_counts_as_done(self, tmp_path):
        w = self._writer(tmp_path)
        w.start(resumed=3)
        row = load_status(w.path)
        assert row["resumed"] == 3
        assert row["done"] == 3

    def test_rows_bounded(self, tmp_path):
        w = self._writer(tmp_path, cells_total=MAX_STATUS_ROWS * 2)
        w.start()
        for _ in range(MAX_STATUS_ROWS * 2):
            w.cell_finished()
        lines = w.path.read_text().splitlines()
        assert len(lines) == MAX_STATUS_ROWS
        # The launch row survives trimming.
        assert json.loads(lines[0])["done"] == 0

    def test_load_status_tolerates_torn_tail(self, tmp_path):
        w = self._writer(tmp_path)
        w.start()
        w.cell_finished()
        with open(w.path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "shard-status", "done"')
        assert load_status(w.path)["done"] == 1

    def test_load_status_empty_raises(self, tmp_path):
        empty = tmp_path / "x.status.jsonl"
        empty.write_text("not json at all\n")
        with pytest.raises(ValueError):
            load_status(empty)


class TestRunShardIntegration:
    def test_sidecar_matches_artifact(self, tmp_path):
        out = tmp_path / "shard.jsonl"
        run_shard(SPEC, 1, 1, out, serial=True)
        sidecar = shard_status_path(out)
        assert sidecar.exists()
        status = load_status(sidecar)
        art = load_artifact(out)
        assert status["state"] == "complete"
        assert status["done"] == len(art.cell_rows) == len(SPEC)
        assert status["failed"] == len(art.error_rows) == 0
        assert status["spec_fingerprint"] == SPEC.fingerprint

    def test_failed_cells_counted(self, tmp_path):
        out = tmp_path / "shard.jsonl"
        run_shard(
            SPEC, 1, 1, out, serial=True, cell_fn=_failing_cell, retries=0
        )
        status = load_status(shard_status_path(out))
        art = load_artifact(out)
        assert status["state"] == "complete"
        assert status["failed"] == len(art.error_rows) == 2
        assert status["done"] == len(SPEC)

    def test_fully_resumed_rerun_refreshes_sidecar(self, tmp_path):
        out = tmp_path / "shard.jsonl"
        run_shard(SPEC, 1, 1, out, serial=True)
        shard_status_path(out).unlink()
        before = out.read_bytes()
        run_shard(SPEC, 1, 1, out, serial=True)
        # Artifact untouched (the resume contract) …
        assert out.read_bytes() == before
        # … but the sidecar reflects the re-invocation as complete.
        status = load_status(shard_status_path(out))
        assert status["state"] == "complete"
        assert status["resumed"] == len(SPEC)
        assert status["done"] == len(SPEC)


class TestEtaUnderEwma:
    def test_eta_monotone_for_constant_cell_times(self, tmp_path):
        # One tick per cell: the EWMA settles immediately, so the ETA
        # must fall strictly with every finished cell — a status line
        # that says "9 minutes left" may never later say "12".
        ticks = iter(range(1000))
        w = ShardStatusWriter(
            tmp_path / "shard.jsonl",
            spec_fingerprint="0" * 16,
            shard=1,
            num_shards=1,
            cells_total=8,
            clock=lambda: float(next(ticks)),
            wall=lambda: 1754650000.0,
        )
        w.start()
        for _ in range(8):
            w.cell_finished()
        rows = [
            json.loads(line) for line in w.path.read_text().splitlines()
        ]
        etas = [r["eta_seconds"] for r in rows if r["eta_seconds"] is not None]
        assert etas == sorted(etas, reverse=True)
        assert etas[-1] == 0.0

    def test_eta_monotone_when_cells_speed_up(self, tmp_path):
        # Cell times falling (warm caches): the EWMA lags but the ETA
        # must still never rise.
        t = {"now": 0.0}
        w = ShardStatusWriter(
            tmp_path / "shard.jsonl",
            spec_fingerprint="0" * 16,
            shard=1,
            num_shards=1,
            cells_total=5,
            clock=lambda: t["now"],
            wall=lambda: 1754650000.0,
        )
        w.start()
        for dt in (8.0, 4.0, 2.0, 1.0, 0.5):
            t["now"] += dt
            w.cell_finished()
        rows = [
            json.loads(line) for line in w.path.read_text().splitlines()
        ]
        etas = [r["eta_seconds"] for r in rows if r["eta_seconds"] is not None]
        assert all(b <= a for a, b in zip(etas, etas[1:]))


class TestSchedulerStatus:
    def test_scheduler_counters_flow_into_rows(self, tmp_path):
        ticks = iter(range(1000))
        w = ShardStatusWriter(
            tmp_path / "sched.jsonl",
            spec_fingerprint="0" * 16,
            shard=0,
            num_shards=0,
            cells_total=2,
            clock=lambda: float(next(ticks)),
            wall=lambda: 1754650000.0,
        )
        w.start()
        w.steals = 3
        w.reclaimed = 1
        w.cell_finished()
        row = load_status(w.path)
        assert (row["shard"], row["num_shards"]) == (0, 0)
        assert row["steals"] == 3
        assert row["reclaimed"] == 1

    def test_run_scheduled_writes_live_sidecar(self, tmp_path):
        from repro.parallel.scheduler import run_scheduled

        out = tmp_path / "sched.jsonl"
        result = run_scheduled(SPEC, out, num_workers=2, poll_seconds=0.02)
        status = load_status(shard_status_path(out))
        assert status["state"] == "complete"
        assert status["done"] == len(SPEC)
        assert status["failed"] == 0
        assert status["steals"] == result.steals
        assert status["reclaimed"] == result.reclaims
        assert (status["shard"], status["num_shards"]) == (0, 0)


class TestFindStatusFiles:
    def test_resolution_modes(self, tmp_path):
        out = tmp_path / "sub" / "shard.jsonl"
        run_shard(SPEC, 1, 1, out, serial=True)
        sidecar = shard_status_path(out)
        # Directory scan, explicit sidecar, artifact path — all resolve
        # to the same file, deduplicated.
        found = find_status_files([tmp_path, sidecar, out])
        assert found == [sidecar]

    def test_missing_paths_yield_nothing(self, tmp_path):
        assert find_status_files([tmp_path / "nope.jsonl"]) == []
