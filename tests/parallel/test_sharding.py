"""Unit and property-based tests for sweep-level sharding.

The property-based half drives the merge contract: folding shard
artifacts must be order-insensitive (any permutation) and
subset-associative (merging pre-merged halves), always reproducing the
serial sweep exactly.  The simulations themselves run once in
module-scoped fixtures; every hypothesis example only re-merges
in-memory artifacts, so hundreds of examples stay cheap.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweep import sweep_from_spec
from repro.parallel.sharding import (
    CELL_KIND,
    SHARD_TELEMETRY_KIND,
    ShardArtifact,
    SweepCell,
    SweepSpec,
    load_artifact,
    merge_artifacts,
    parse_shard_arg,
    partition_cells,
    run_shard,
    write_merged_artifact,
)
from repro.telemetry import deterministic_view
from repro.telemetry.manifest import SHARD_MANIFEST_KIND

SPEC = SweepSpec(
    protocols=("direct",),
    lambdas=(4.0, 8.0),
    seeds=(0, 1, 2),
    rounds=2,
    telemetry=True,
)


@pytest.fixture(scope="module")
def serial_sweep():
    return sweep_from_spec(SPEC, serial=True)


@pytest.fixture(scope="module")
def singleton_artifacts(tmp_path_factory):
    """One artifact per cell (K = N singleton shards)."""
    root = tmp_path_factory.mktemp("singletons")
    n = len(SPEC)
    paths = []
    for k in range(1, n + 1):
        res = run_shard(SPEC, k, n, root / f"s{k}.jsonl", serial=True)
        assert len(res.cells) == 1 and not res.errors
        paths.append(res.path)
    return [load_artifact(p) for p in paths]


class TestSpec:
    def test_payload_roundtrip(self):
        clone = SweepSpec.from_payload(SPEC.to_payload())
        assert clone == SPEC
        assert clone.fingerprint == SPEC.fingerprint

    def test_payload_roundtrips_through_json(self):
        clone = SweepSpec.from_payload(json.loads(json.dumps(SPEC.to_payload())))
        assert clone.fingerprint == SPEC.fingerprint

    def test_fingerprint_sensitive_to_grid(self):
        other = SweepSpec(
            protocols=("direct",), lambdas=(4.0, 8.0), seeds=(0, 1), rounds=2
        )
        assert other.fingerprint != SPEC.fingerprint

    def test_coerces_sequences(self):
        spec = SweepSpec(protocols=["direct"], lambdas=[4], seeds=[0])
        assert spec.protocols == ("direct",)
        assert spec.lambdas == (4.0,)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(protocols=(), lambdas=(4.0,), seeds=(0,))

    def test_len_is_grid_size(self):
        assert len(SPEC) == 1 * 2 * 3

    def test_cell_args_match_cells_order(self):
        args = SPEC.cell_args()
        cells = SPEC.cells()
        assert [(a[0], a[1], a[2]) for a in args] == [
            (c.protocol, c.lam, c.seed) for c in cells
        ]


class TestCellIdentity:
    def test_ids_are_16_hex(self):
        for cell in SPEC.cells():
            int(cell.cell_id, 16)
            assert len(cell.cell_id) == 16

    def test_ids_unique_and_stable(self):
        a = [c.cell_id for c in SPEC.cells()]
        b = [c.cell_id for c in SPEC.cells()]
        assert a == b
        assert len(set(a)) == len(a)

    def test_id_embeds_config_fingerprint(self):
        """Changing the scenario (rounds) moves every cell ID."""
        other = SweepSpec(
            protocols=("direct",), lambdas=(4.0, 8.0), seeds=(0, 1, 2),
            rounds=3, telemetry=True,
        )
        assert {c.cell_id for c in other.cells()}.isdisjoint(
            {c.cell_id for c in SPEC.cells()}
        )

    def test_id_survives_grid_extension(self):
        """Adding a protocol leaves existing cells' IDs untouched."""
        wider = SweepSpec(
            protocols=("direct", "kmeans"), lambdas=(4.0, 8.0),
            seeds=(0, 1, 2), rounds=2, telemetry=True,
        )
        assert {c.cell_id for c in SPEC.cells()} <= {
            c.cell_id for c in wider.cells()
        }

    def test_id_embeds_stop_on_death(self):
        """stop_on_death shapes the simulation outcome but is not a
        SimulationConfig field; it must still move every cell ID."""
        flipped = SweepSpec(
            protocols=("direct",), lambdas=(4.0, 8.0), seeds=(0, 1, 2),
            rounds=2, stop_on_death=True, telemetry=True,
        )
        assert {c.cell_id for c in flipped.cells()}.isdisjoint(
            {c.cell_id for c in SPEC.cells()}
        )

    def test_build_is_pure(self):
        a = SweepCell.build("direct", 4.0, 0, "ab" * 8, False)
        b = SweepCell.build("direct", 4.0, 0, "ab" * 8, False)
        assert a == b
        assert a.cell_id != SweepCell.build(
            "direct", 4.0, 0, "ab" * 8, True
        ).cell_id


class TestPartition:
    def test_disjoint_and_covering(self):
        cells = SPEC.cells()
        for k in (1, 2, 3, len(cells), len(cells) + 3):
            shards = partition_cells(cells, k)
            ids = [c.cell_id for shard in shards for c in shard]
            assert sorted(ids) == sorted(c.cell_id for c in cells)
            assert len(ids) == len(set(ids))

    def test_balanced(self):
        shards = partition_cells(SPEC.cells(), 4)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_singletons_at_k_equals_n(self):
        cells = SPEC.cells()
        shards = partition_cells(cells, len(cells))
        assert all(len(s) == 1 for s in shards)

    def test_assignment_ignores_enumeration_order(self):
        cells = SPEC.cells()
        shards = partition_cells(cells, 3)
        reversed_shards = partition_cells(list(reversed(cells)), 3)
        for a, b in zip(shards, reversed_shards):
            assert {c.cell_id for c in a} == {c.cell_id for c in b}

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            partition_cells(SPEC.cells(), 0)


class TestParseShardArg:
    def test_parses(self):
        assert parse_shard_arg("1/1") == (1, 1)
        assert parse_shard_arg("2/3") == (2, 3)

    @pytest.mark.parametrize("bad", ["0/3", "4/3", "x/3", "3", "1/2/3", ""])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_shard_arg(bad)


class TestArtifactFormat:
    def test_header_and_record_kinds(self, singleton_artifacts):
        art = singleton_artifacts[0]
        assert art.manifest["kind"] == SHARD_MANIFEST_KIND
        assert art.manifest["spec_fingerprint"] == SPEC.fingerprint
        kinds = [r["kind"] for r in art.records]
        assert kinds == [CELL_KIND, SHARD_TELEMETRY_KIND]

    def test_torn_tail_tolerated(self, singleton_artifacts, tmp_path):
        text = singleton_artifacts[0].path.read_text()
        torn = tmp_path / "torn.jsonl"
        torn.write_text(text + '{"kind": "cell", "cell_id": "dead')
        art = load_artifact(torn)
        assert len(art.records) == len(singleton_artifacts[0].records)

    def test_malformed_middle_line_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            json.dumps({"kind": SHARD_MANIFEST_KIND, "spec": {}}) + "\n"
            "not json\n"
            + json.dumps({"kind": CELL_KIND}) + "\n"
        )
        with pytest.raises(ValueError, match="malformed"):
            load_artifact(bad)

    def test_missing_header_rejected(self, tmp_path):
        bad = tmp_path / "headless.jsonl"
        bad.write_text(json.dumps({"kind": CELL_KIND}) + "\n")
        with pytest.raises(ValueError, match="header"):
            load_artifact(bad)


class TestMergeProperties:
    """The satellite property suite: order-insensitivity and
    subset-associativity of the artifact merge, against the serial run."""

    def _check(self, merged, serial_sweep):
        assert merged.complete
        assert merged.sweep.rows == serial_sweep.rows
        assert deterministic_view(merged.sweep.telemetry) == deterministic_view(
            serial_sweep.telemetry
        )

    @given(perm=st.permutations(list(range(6))))
    @settings(max_examples=30, deadline=None)
    def test_merge_is_order_insensitive(
        self, perm, singleton_artifacts, serial_sweep
    ):
        arts = [singleton_artifacts[i] for i in perm]
        self._check(merge_artifacts(arts), serial_sweep)

    @given(mask=st.lists(st.booleans(), min_size=6, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_merge_is_subset_associative(
        self, mask, singleton_artifacts, serial_sweep, tmp_path_factory
    ):
        """merge(merge(A), merge(B)) == merge(A + B) == serial, for any
        2-colouring of the artifacts into halves A and B."""
        half_a = [a for a, m in zip(singleton_artifacts, mask) if m]
        half_b = [a for a, m in zip(singleton_artifacts, mask) if not m]
        root = tmp_path_factory.mktemp("halves")
        halves = []
        for i, half in enumerate((half_a, half_b)):
            if not half:
                continue
            merged_half = merge_artifacts(half)  # partial: cells missing
            path = write_merged_artifact(
                merged_half, half, root / f"half{i}.jsonl"
            )
            halves.append(path)
        self._check(merge_artifacts(halves), serial_sweep)

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_duplicate_coverage_is_idempotent(
        self, data, singleton_artifacts, serial_sweep
    ):
        """Merging the same artifact several times changes nothing."""
        extra = data.draw(
            st.lists(st.sampled_from(singleton_artifacts), max_size=4)
        )
        self._check(
            merge_artifacts(list(singleton_artifacts) + extra), serial_sweep
        )


def _with_doctored_telemetry(art, predicate):
    """Copy ``art`` with every telemetry metric matching ``predicate``
    numerically perturbed (cell rows and trailer alike)."""
    def bump(metric):
        metric = dict(metric)
        if "value" in metric:
            metric["value"] = metric["value"] + 1
        else:
            metric["total"] = metric["total"] + 1.0
        return metric

    records = []
    touched = 0
    for r in art.records:
        r = json.loads(json.dumps(r))  # deep copy
        for key in ("telemetry", "snapshot"):
            snap = r.get(key)
            if not snap:
                continue
            for name in snap:
                if predicate(name):
                    snap[name] = bump(snap[name])
                    touched += 1
        records.append(r)
    assert touched, "expected the predicate to match at least one metric"
    return ShardArtifact(manifest=dict(art.manifest), records=records, path=None)


class TestDuplicateCoverageTelemetry:
    """Instrumented artifacts covering the same cell legitimately
    disagree on wall-clock ``time/`` metrics; the merge conflict check
    must compare only the deterministic view of the snapshots."""

    def test_independent_rerun_overlaps_cleanly(
        self, singleton_artifacts, serial_sweep, tmp_path
    ):
        """A fresh 1/1 artifact (new wall-clock readings) merges with
        the singleton shards without a spurious conflict."""
        res = run_shard(SPEC, 1, 1, tmp_path / "whole.jsonl", serial=True)
        merged = merge_artifacts(
            [res.path, *singleton_artifacts]
        ).require_complete()
        assert merged.sweep.rows == serial_sweep.rows
        assert deterministic_view(merged.sweep.telemetry) == deterministic_view(
            serial_sweep.telemetry
        )

    def test_wallclock_difference_is_not_a_conflict(self, singleton_artifacts):
        art = singleton_artifacts[0]
        doctored = _with_doctored_telemetry(
            art, lambda name: name.startswith("time/")
        )
        merged = merge_artifacts([art, doctored])
        assert len(merged.sweep.rows) == 1

    def test_deterministic_telemetry_difference_still_conflicts(
        self, singleton_artifacts
    ):
        art = singleton_artifacts[0]
        doctored = _with_doctored_telemetry(
            art, lambda name: not name.startswith("time/")
        )
        with pytest.raises(ValueError, match="conflicting"):
            merge_artifacts([art, doctored])


class TestMergeValidation:
    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="no artifacts"):
            merge_artifacts([])

    def test_spec_mismatch_rejected(self, singleton_artifacts, tmp_path):
        other = SweepSpec(
            protocols=("direct",), lambdas=(4.0,), seeds=(0,), rounds=2
        )
        res = run_shard(other, 1, 1, tmp_path / "other.jsonl", serial=True)
        with pytest.raises(ValueError, match="fingerprint"):
            merge_artifacts([singleton_artifacts[0], res.path])

    def test_conflicting_rows_rejected(self, singleton_artifacts):
        art = singleton_artifacts[0]
        doctored = ShardArtifact(
            manifest=dict(art.manifest),
            records=[
                {**r, "summary": {**r["summary"], "pdr": -1.0}}
                if r["kind"] == CELL_KIND
                else r
                for r in art.records
            ],
            path=None,
        )
        with pytest.raises(ValueError, match="conflicting"):
            merge_artifacts([art, doctored])

    def test_foreign_cell_rejected(self, singleton_artifacts):
        art = singleton_artifacts[0]
        doctored = ShardArtifact(
            manifest=dict(art.manifest),
            records=[
                {**r, "cell_id": "f" * 16} if r["kind"] == CELL_KIND else r
                for r in art.records
            ],
            path=None,
        )
        with pytest.raises(ValueError, match="not in the grid"):
            merge_artifacts([doctored])

    def test_partial_merge_reports_missing(self, singleton_artifacts):
        merged = merge_artifacts(singleton_artifacts[:2])
        assert not merged.complete
        assert len(merged.missing) == 4
        assert len(merged.sweep.rows) == 2
        with pytest.raises(ValueError, match="incomplete"):
            merged.require_complete()
