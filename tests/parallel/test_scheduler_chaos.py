"""Chaos and equivalence acceptance tests for the scheduled sweep.

Real process violence: a worker SIGKILLs itself mid-cell (the
coordinator sees the pipe die, reclaims the lease, respawns the slot,
and the cell reruns exactly once), a cell raises a deterministic
error (an immediate ``cell-error`` row, never re-leased), and — the
paper-level invariant — a chaos-ridden scheduled run, healed and
resumed, merges bit-for-bit equal to the serial sweep and to a
static-sharded run on every deterministic metric.
"""

import os
import signal
from pathlib import Path

from repro.analysis.sweep import run_cell, sweep_from_spec
from repro.parallel.scheduler import (
    run_scheduled,
    scheduler_events_path,
)
from repro.parallel.sharding import (
    CELL_ERROR_KIND,
    SweepSpec,
    load_artifact,
    merge_artifacts,
    run_shard,
)
from repro.telemetry import deterministic_view
from repro.telemetry.jsonl import read_jsonl_tolerant

SPEC = SweepSpec(
    protocols=("direct",),
    lambdas=(4.0, 8.0),
    seeds=(0, 1, 2, 3),
    rounds=2,
    telemetry=True,
)

#: Directory holding the kill-once marker; set by tests that want a
#: worker death.  The marker makes the SIGKILL one-shot: the re-leased
#: attempt finds it and computes normally.
KILL_DIR_ENV = "REPRO_TEST_SCHED_KILL_DIR"
#: When set, the deterministically-failing cell is healed.
HEAL_ENV = "REPRO_TEST_SCHED_HEAL"

#: The victim cells (module-level so the chaos is deterministic).
KILL_SEED, FAIL_SEED = 0, 1
CHAOS_LAMBDA = 4.0


def _chaos_cell(
    protocol, lam, seed, initial_energy, rounds, stop, telemetry,
    backend="auto", faults=None, equivalence="bitwise", max_block_mb=None,
    routing="direct",
):
    kill_dir = os.environ.get(KILL_DIR_ENV)
    if kill_dir and seed == KILL_SEED and lam == CHAOS_LAMBDA:
        marker = Path(kill_dir) / "killed-once"
        if not marker.exists():
            marker.write_text("x")
            os.kill(os.getpid(), signal.SIGKILL)
    if (
        seed == FAIL_SEED
        and lam == CHAOS_LAMBDA
        and not os.environ.get(HEAL_ENV)
    ):
        raise ValueError("injected deterministic cell failure")
    return run_cell(
        protocol, lam, seed,
        initial_energy=initial_energy, rounds=rounds,
        stop_on_death=stop, telemetry=telemetry, backend=backend,
        faults=faults, equivalence=equivalence, max_block_mb=max_block_mb,
        routing=routing,
    )


def _cell_ids_by_seed(spec):
    return {
        (c.lam, c.seed): c.cell_id for c in spec.cells()
    }


class TestSigkillMidCell:
    def test_lease_reclaimed_and_cell_reruns_exactly_once(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(KILL_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(HEAL_ENV, "1")
        out = tmp_path / "sched.jsonl"
        result = run_scheduled(
            SPEC, out, num_workers=2,
            cell_fn=_chaos_cell, poll_seconds=0.02,
        )
        assert (tmp_path / "killed-once").exists(), "chaos never fired"
        assert result.worker_deaths == 1
        assert result.reclaims == 1
        assert result.ok
        assert not result.errors

        # Exactly-once in the merged artifact: every cell of the grid
        # appears once, including the one whose first worker died.
        art = load_artifact(out)
        ids = [r["cell_id"] for r in art.cell_rows]
        assert len(ids) == len(set(ids)) == len(SPEC)
        killed_id = _cell_ids_by_seed(SPEC)[(CHAOS_LAMBDA, KILL_SEED)]
        assert ids.count(killed_id) == 1

        # The event log tells the full story for the killed cell:
        # lease -> worker-dead -> reclaim -> requeue -> ... -> complete.
        events = read_jsonl_tolerant(scheduler_events_path(out))
        story = [
            e["event"] for e in events if e.get("cell_id") == killed_id
        ]
        assert story.count("complete") == 1
        assert "reclaim" in story and "requeue" in story
        assert any(e["event"] == "worker-dead" for e in events)

    def test_chaos_artifact_equals_clean_run(self, tmp_path, monkeypatch):
        """A worker death must not perturb the artifact contents: the
        rerun computes the same deterministic row."""
        monkeypatch.setenv(HEAL_ENV, "1")
        clean = tmp_path / "clean" / "sched.jsonl"
        run_scheduled(
            SPEC, clean, num_workers=2,
            cell_fn=_chaos_cell, poll_seconds=0.02,
        )
        monkeypatch.setenv(KILL_DIR_ENV, str(tmp_path))
        chaotic = tmp_path / "chaos" / "sched.jsonl"
        run_scheduled(
            SPEC, chaotic, num_workers=2,
            cell_fn=_chaos_cell, poll_seconds=0.02,
        )
        a = merge_artifacts([clean]).require_complete()
        b = merge_artifacts([chaotic]).require_complete()
        assert a.sweep.rows == b.sweep.rows
        assert deterministic_view(a.sweep.telemetry) == deterministic_view(
            b.sweep.telemetry
        )


class TestDeterministicFailure:
    def test_error_row_immediately_and_never_releases(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(HEAL_ENV, raising=False)
        monkeypatch.delenv(KILL_DIR_ENV, raising=False)
        out = tmp_path / "sched.jsonl"
        result = run_scheduled(
            SPEC, out, num_workers=2,
            cell_fn=_chaos_cell, poll_seconds=0.02,
        )
        assert not result.ok
        assert len(result.errors) == 1
        record = result.errors[0]
        assert record["kind"] == CELL_ERROR_KIND
        assert record["error"]["type"] == "ValueError"
        assert record["error"]["class"] == "deterministic"
        assert record["attempts"] == 1

        failed_id = _cell_ids_by_seed(SPEC)[(CHAOS_LAMBDA, FAIL_SEED)]
        events = read_jsonl_tolerant(scheduler_events_path(out))
        story = [
            e["event"] for e in events if e.get("cell_id") == failed_id
        ]
        # One grant, one terminal error — no requeue, no second lease.
        assert story == ["lease", "error"] or story == ["steal", "error"]
        # The other cells all completed.
        art = load_artifact(out)
        assert len(art.cell_rows) == len(SPEC) - 1

    def test_heal_resume_recomputes_only_the_errored_cell(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(HEAL_ENV, raising=False)
        monkeypatch.delenv(KILL_DIR_ENV, raising=False)
        out = tmp_path / "sched.jsonl"
        run_scheduled(
            SPEC, out, num_workers=2,
            cell_fn=_chaos_cell, poll_seconds=0.02,
        )
        failed_id = _cell_ids_by_seed(SPEC)[(CHAOS_LAMBDA, FAIL_SEED)]

        monkeypatch.setenv(HEAL_ENV, "1")
        healed = run_scheduled(
            SPEC, out, num_workers=2,
            cell_fn=_chaos_cell, poll_seconds=0.02,
        )
        assert healed.executed == [failed_id]
        assert len(healed.skipped) == len(SPEC) - 1
        assert healed.ok
        merge_artifacts([out]).require_complete()


class TestScheduledEqualsShardedEqualsSerial:
    def test_three_way_equivalence_through_chaos(
        self, tmp_path, monkeypatch
    ):
        """The acceptance invariant: serial sweep, static 2-shard run,
        and a scheduled run that survived one worker SIGKILL and one
        deterministic failure (healed + resumed) agree bit for bit on
        every deterministic metric."""
        serial = sweep_from_spec(SPEC, serial=True)

        shards = [
            run_shard(
                SPEC, k, 2, tmp_path / f"shard-{k}of2.jsonl", serial=True
            )
            for k in (1, 2)
        ]
        sharded = merge_artifacts(
            [r.path for r in shards]
        ).require_complete()

        # Chaos pass: one transient SIGKILL, one deterministic failure.
        monkeypatch.setenv(KILL_DIR_ENV, str(tmp_path))
        monkeypatch.delenv(HEAL_ENV, raising=False)
        out = tmp_path / "sched.jsonl"
        chaos = run_scheduled(
            SPEC, out, num_workers=2,
            cell_fn=_chaos_cell, poll_seconds=0.02,
        )
        assert chaos.worker_deaths == 1, "transient kill never fired"
        assert len(chaos.errors) == 1, "deterministic failure never fired"
        # Only the transient cell re-leased; the deterministic one
        # errored on its single grant.
        assert chaos.reclaims == 1
        assert chaos.errors[0]["attempts"] == 1

        # Heal and resume: recompute exactly the errored cell.
        monkeypatch.setenv(HEAL_ENV, "1")
        healed = run_scheduled(
            SPEC, out, num_workers=2,
            cell_fn=_chaos_cell, poll_seconds=0.02,
        )
        assert len(healed.executed) == 1 and healed.ok

        scheduled = merge_artifacts([out]).require_complete()
        assert scheduled.sweep.rows == serial.rows
        assert sharded.sweep.rows == serial.rows
        assert deterministic_view(
            scheduled.sweep.telemetry
        ) == deterministic_view(serial.telemetry)
        assert deterministic_view(
            sharded.sweep.telemetry
        ) == deterministic_view(serial.telemetry)
