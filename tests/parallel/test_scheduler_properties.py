"""Property tests: exactly-once under arbitrary scheduler interleavings.

Hypothesis drives the pure :class:`SweepScheduler` state machine
through random interleavings of every operation it exposes — leases,
steals, completions, transient and deterministic failures, worker
deaths, lease expiry, heartbeats, *and* adversarial stale reports from
workers whose leases were reclaimed — asserting the exactly-once
partition invariant after every single step, then driving the grid to
completion and checking that every cell finished exactly once.

This is the paper-level guarantee the chaos suite samples and this
suite exhausts: no interleaving of steals, reclaims, and duplicate
leases can lose a cell or finish one twice.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.scheduler import SweepScheduler
from repro.parallel.sharding import SweepCell

WORKERS = ("w0", "w1", "w2", "w3")

#: The operation alphabet.  Stale variants deliberately report from a
#: worker that may not hold the lease (or for a finished cell).
OPS = (
    "acquire",
    "complete",
    "fail-transient",
    "fail-deterministic",
    "stale-complete",
    "stale-fail",
    "worker-lost",
    "expire-all",
    "heartbeat",
)


def make_cells(n: int) -> list[SweepCell]:
    return [
        SweepCell.build("proto", float(i), i, f"{i:016x}") for i in range(n)
    ]


def finish_serially(sched: SweepScheduler, clock: float) -> None:
    """Drain whatever is left through one well-behaved worker."""
    # Release any leases still held by the chaos phase via expiry...
    while not sched.finished:
        clock += sched.lease_seconds + 1.0
        sched.reclaim_expired(clock)
        sched.check_invariants()
        while (cell := sched.acquire("closer", 0, clock)) is not None:
            sched.complete("closer", cell.cell_id, {"v": 1}, 1, clock)
            sched.check_invariants()


class TestExactlyOnce:
    @given(
        n_cells=st.integers(min_value=1, max_value=8),
        num_queues=st.integers(min_value=1, max_value=4),
        max_attempts=st.integers(min_value=1, max_value=3),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_any_interleaving_yields_exactly_once_rows(
        self, n_cells, num_queues, max_attempts, data
    ):
        cells = make_cells(n_cells)
        sched = SweepScheduler(
            cells,
            num_queues,
            lease_seconds=10.0,
            max_lease_attempts=max_attempts,
        )
        clock = 0.0
        steps = data.draw(
            st.lists(st.sampled_from(OPS), max_size=4 * n_cells),
            label="interleaving",
        )
        for op in steps:
            clock += 1.0
            worker = data.draw(st.sampled_from(WORKERS), label=op)
            held = sched.lease_of(worker)
            if op == "acquire" and held is None:
                sched.acquire(worker, data.draw(
                    st.integers(0, 3), label="index"
                ), clock)
            elif op == "complete" and held is not None:
                sched.complete(worker, held.cell_id, {"v": 1}, 1, clock)
            elif op == "fail-transient" and held is not None:
                sched.fail(
                    worker, held.cell_id,
                    {"type": "OSError", "message": "x", "class": "transient"},
                    1, clock,
                )
            elif op == "fail-deterministic" and held is not None:
                sched.fail(
                    worker, held.cell_id,
                    {
                        "type": "ValueError",
                        "message": "x",
                        "class": "deterministic",
                    },
                    1, clock,
                )
            elif op == "stale-complete":
                # A late success for an arbitrary cell: accepted iff the
                # cell is unfinished, counted duplicate otherwise —
                # never a second row.
                cell = data.draw(st.sampled_from(cells), label="stale cell")
                sched.complete(worker, cell.cell_id, {"v": 1}, 1, clock)
            elif op == "stale-fail":
                cell = data.draw(st.sampled_from(cells), label="stale cell")
                sched.fail(
                    worker, cell.cell_id,
                    {"type": "OSError", "message": "x", "class": "transient"},
                    1, clock,
                )
            elif op == "worker-lost":
                sched.worker_lost(worker, clock)
            elif op == "expire-all":
                clock += sched.lease_seconds + 1.0
                sched.reclaim_expired(clock)
            elif op == "heartbeat":
                sched.heartbeat(worker, clock)
            sched.check_invariants()

        finish_serially(sched, clock)

        finished = set(sched.rows) | set(sched.errors)
        assert finished == {c.cell_id for c in cells}
        assert not (set(sched.rows) & set(sched.errors))
        rows, errors, missing = sched.partial_sweep()
        assert not missing
        assert len(rows) + len(errors) == n_cells
        # Attempt budget held for every cell that ever leased.
        assert all(
            1 <= a <= max_attempts for a in sched.attempts.values()
        )
        # The event log is a gapless, seq-ordered history.
        assert [e["seq"] for e in sched.events] == list(
            range(1, len(sched.events) + 1)
        )

    @given(
        n_cells=st.integers(min_value=1, max_value=10),
        num_queues=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_pure_drain_completes_every_cell_without_duplicates(
        self, n_cells, num_queues
    ):
        # The no-chaos baseline: a fleet of greedy workers draining the
        # queues (with steals) finishes the grid exactly once.
        sched = SweepScheduler(make_cells(n_cells), num_queues)
        clock = 0.0
        while not sched.finished:
            clock += 1.0
            progressed = False
            for i, worker in enumerate(WORKERS):
                if sched.lease_of(worker) is not None:
                    continue
                cell = sched.acquire(worker, i, clock)
                if cell is None:
                    continue
                progressed = True
                sched.complete(worker, cell.cell_id, {"v": 1}, 1, clock)
                sched.check_invariants()
            assert progressed, "scheduler wedged with work outstanding"
        assert len(sched.rows) == n_cells
        assert sched.duplicates == 0
        assert not sched.errors
