"""Tests for the process-pool sweep executor."""

import os

import pytest

from repro.parallel.pool import (
    default_workers,
    fold_results,
    iter_tasks,
    run_tasks,
)


def square(x):
    return x * x


def add(a, b):
    return a + b


def boom(x):
    raise RuntimeError(f"boom {x}")


class TestRunTasks:
    def test_serial_matches_expected(self):
        assert run_tasks(square, [(i,) for i in range(6)], serial=True) == [
            0, 1, 4, 9, 16, 25,
        ]

    def test_parallel_matches_serial(self):
        args = [(i,) for i in range(12)]
        serial = run_tasks(square, args, serial=True)
        parallel = run_tasks(square, args, max_workers=2)
        assert serial == parallel

    def test_results_in_submission_order(self):
        args = [(i,) for i in range(20)]
        assert run_tasks(square, args, max_workers=3) == [i * i for i in range(20)]

    def test_multi_arg_tasks(self):
        assert run_tasks(add, [(1, 2), (3, 4)], serial=True) == [3, 7]

    def test_empty_input(self):
        assert run_tasks(square, []) == []

    def test_single_task_runs_inline(self):
        assert run_tasks(square, [(5,)]) == [25]

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_tasks(boom, [(1,)], serial=True)

    def test_chunksize_validation(self):
        with pytest.raises(ValueError):
            run_tasks(square, [(1,), (2,)], max_workers=2, chunksize=0)


class TestFoldResults:
    def test_left_fold_in_order(self):
        order = []

        def merge(a, b):
            order.append((a, b))
            return a + b

        assert fold_results([1, 2, 3], merge) == 6
        assert order == [(1, 2), (3, 3)]

    def test_empty_returns_none(self):
        assert fold_results([], lambda a, b: a + b) is None

    def test_single_result_passes_through(self):
        sentinel = object()
        assert fold_results([sentinel], lambda a, b: a) is sentinel

    def test_folds_telemetry_snapshots(self):
        """The intended use: per-worker metric snapshots fold into one
        sweep-level view with the commutative snapshot merge."""
        from repro.telemetry import MetricRegistry, merge_snapshots

        snaps = []
        for v in (1, 2, 3):
            reg = MetricRegistry()
            reg.counter("x").add(v)
            snaps.append(reg.snapshot())
        merged = fold_results(snaps, merge_snapshots)
        assert merged["x"]["value"] == 6


class TestIterTasks:
    def test_streams_in_submission_order(self):
        it = iter_tasks(square, [(i,) for i in range(8)], max_workers=2)
        assert next(it) == 0
        assert list(it) == [i * i for i in range(1, 8)]

    def test_serial_streaming(self):
        assert list(iter_tasks(square, [(3,), (4,)], serial=True)) == [9, 16]

    def test_empty(self):
        assert list(iter_tasks(square, [])) == []

    def test_invalid_chunksize_raises_eagerly(self):
        """Regression: validation must fire at the call, not on the
        first next() of an unadvanced generator."""
        with pytest.raises(ValueError):
            iter_tasks(square, [(1,), (2,)], chunksize=0)

    def test_invalid_max_workers_raises_eagerly(self):
        with pytest.raises(ValueError):
            iter_tasks(square, [(1,), (2,)], max_workers=0)
        with pytest.raises(ValueError):
            iter_tasks(square, [], max_workers=0)


class TestDefaultWorkers:
    def test_explicit_value(self):
        assert default_workers(3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            default_workers(0)

    def test_auto_leaves_headroom(self):
        w = default_workers()
        assert 1 <= w <= (os.cpu_count() or 2)

    def test_clamps_to_task_count(self):
        """Regression: a 2-cell shard must not spawn cpu_count-1
        workers — the pool is capped at one worker per task."""
        assert default_workers(None, n_tasks=2) <= 2
        assert default_workers(8, n_tasks=3) == 3
        assert default_workers(2, n_tasks=5) == 2

    def test_task_count_keeps_floor_of_one(self):
        assert default_workers(None, n_tasks=1) == 1
        with pytest.raises(ValueError):
            default_workers(None, n_tasks=0)
