"""Tests for the process-pool sweep executor."""

import os

import pytest

from repro.parallel.pool import default_workers, run_tasks


def square(x):
    return x * x


def add(a, b):
    return a + b


def boom(x):
    raise RuntimeError(f"boom {x}")


class TestRunTasks:
    def test_serial_matches_expected(self):
        assert run_tasks(square, [(i,) for i in range(6)], serial=True) == [
            0, 1, 4, 9, 16, 25,
        ]

    def test_parallel_matches_serial(self):
        args = [(i,) for i in range(12)]
        serial = run_tasks(square, args, serial=True)
        parallel = run_tasks(square, args, max_workers=2)
        assert serial == parallel

    def test_results_in_submission_order(self):
        args = [(i,) for i in range(20)]
        assert run_tasks(square, args, max_workers=3) == [i * i for i in range(20)]

    def test_multi_arg_tasks(self):
        assert run_tasks(add, [(1, 2), (3, 4)], serial=True) == [3, 7]

    def test_empty_input(self):
        assert run_tasks(square, []) == []

    def test_single_task_runs_inline(self):
        assert run_tasks(square, [(5,)]) == [25]

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_tasks(boom, [(1,)], serial=True)

    def test_chunksize_validation(self):
        with pytest.raises(ValueError):
            run_tasks(square, [(1,), (2,)], max_workers=2, chunksize=0)


class TestDefaultWorkers:
    def test_explicit_value(self):
        assert default_workers(3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            default_workers(0)

    def test_auto_leaves_headroom(self):
        w = default_workers()
        assert 1 <= w <= (os.cpu_count() or 2)
