"""Tests for the job-catalog serve loop (repro.parallel.serve)."""

import json

import pytest

from repro.analysis.sweep import run_cell
from repro.parallel.scheduler import run_scheduled
from repro.parallel.serve import (
    JOB_SUFFIX,
    discover_jobs,
    job_snapshot,
    load_job,
    serve_forever,
    serve_once,
    serve_status_path,
)
from repro.parallel.sharding import SweepSpec

SPEC = SweepSpec(
    protocols=("direct",),
    lambdas=(4.0, 8.0),
    seeds=(0, 1),
    rounds=2,
)


def _write_job(jobs_dir, name, *, spec=SPEC, **options):
    jobs_dir.mkdir(parents=True, exist_ok=True)
    path = jobs_dir / f"{name}{JOB_SUFFIX}"
    path.write_text(json.dumps({"spec": spec.to_payload(), **options}))
    return path


def _failing_cell(
    protocol, lam, seed, initial_energy, rounds, stop, telemetry,
    backend="auto", faults=None, equivalence="bitwise", max_block_mb=None,
    routing="direct",
):
    if seed == 1 and lam == 4.0:
        raise ValueError("injected serve-test failure")
    return run_cell(
        protocol, lam, seed,
        initial_energy=initial_energy, rounds=rounds,
        stop_on_death=stop, telemetry=telemetry, backend=backend,
        faults=faults, equivalence=equivalence, max_block_mb=max_block_mb,
        routing=routing,
    )


class TestJobCatalog:
    def test_load_job_round_trips_options(self, tmp_path):
        path = _write_job(
            tmp_path, "fig3",
            workers=2, compression="gz", retries=1,
            lease_seconds=60.0, max_lease_attempts=2,
        )
        job = load_job(path)
        assert job.name == "fig3"
        assert job.spec == SPEC
        assert job.artifact_path == tmp_path / "artifacts" / "fig3.jsonl.gz"
        assert job.workers == 2
        assert job.retries == 1
        assert job.lease_seconds == 60.0
        assert job.max_lease_attempts == 2

    def test_unknown_job_key_raises(self, tmp_path):
        path = _write_job(tmp_path, "typo", worker=3)
        with pytest.raises(ValueError, match="unknown job key"):
            load_job(path)

    def test_job_needs_spec(self, tmp_path):
        path = tmp_path / f"empty{JOB_SUFFIX}"
        path.write_text("{}")
        with pytest.raises(ValueError, match="'spec'"):
            load_job(path)

    def test_discover_jobs_sorted_by_name(self, tmp_path):
        for name in ("zeta", "alpha"):
            _write_job(tmp_path, name)
        assert [j.name for j in discover_jobs(tmp_path)] == ["alpha", "zeta"]


class TestJobSnapshot:
    def test_states_across_the_artifact_lifecycle(self, tmp_path):
        job = load_job(_write_job(tmp_path, "j"))
        # No artifact yet.
        snap = job_snapshot(job)
        assert snap["state"] == "queued"
        assert snap["missing"] == len(SPEC) and snap["rows"] == []

        # Complete run.
        run_scheduled(job.spec, job.artifact_path, num_workers=1,
                      poll_seconds=0.02)
        snap = job_snapshot(job)
        assert snap["state"] == "complete"
        assert snap["done"] == len(SPEC) and not snap["missing"]
        assert len(snap["rows"]) == len(SPEC)

        # Torn artifact (crash mid-append): tolerant read, partial view.
        raw = job.artifact_path.read_bytes()
        lines = raw.decode().splitlines()
        job.artifact_path.write_text("\n".join(lines[:-1]) + "\n")
        snap = job_snapshot(job)
        assert snap["state"] == "partial"
        assert snap["done"] == len(SPEC) - 1 and snap["missing"] == 1

        # Interior corruption is surfaced, not silently healed.
        job.artifact_path.write_text("GARBAGE\n" + "\n".join(lines[1:]))
        assert job_snapshot(job)["state"] == "corrupt"

    def test_failed_state_when_errors_and_nothing_missing(self, tmp_path):
        job = load_job(_write_job(tmp_path, "j"))
        run_scheduled(
            job.spec, job.artifact_path, num_workers=1,
            cell_fn=_failing_cell, poll_seconds=0.02,
        )
        snap = job_snapshot(job)
        assert snap["state"] == "failed"
        assert snap["errors"] == 1
        assert snap["done"] == len(SPEC) - 1 and not snap["missing"]


class TestServeOnce:
    def test_drains_catalog_and_publishes_idle_snapshot(self, tmp_path):
        _write_job(tmp_path, "plain")
        _write_job(tmp_path, "packed", compression="gz")
        report = serve_once(tmp_path, workers=1, poll_seconds=0.02)
        assert report.ok
        assert report.executed == 2 * len(SPEC)
        assert (tmp_path / "artifacts" / "plain.jsonl").exists()
        assert (tmp_path / "artifacts" / "packed.jsonl.gz").exists()
        status = json.loads(serve_status_path(tmp_path).read_text())
        assert status["kind"] == "serve-status"
        assert status["state"] == "idle"
        assert [j["state"] for j in status["jobs"]] == ["complete"] * 2

    def test_second_pass_is_an_idempotent_resume(self, tmp_path):
        _write_job(tmp_path, "j")
        serve_once(tmp_path, workers=1, poll_seconds=0.02)
        artifact = tmp_path / "artifacts" / "j.jsonl"
        before = artifact.read_bytes()
        report = serve_once(tmp_path, workers=1, poll_seconds=0.02)
        assert report.executed == 0
        assert report.resumed == len(SPEC)
        assert artifact.read_bytes() == before

    def test_live_snapshot_streams_partial_rows(self, tmp_path):
        _write_job(tmp_path, "j")
        seen = []

        def watch(job, scheduler, result):
            snap = json.loads(serve_status_path(tmp_path).read_text())
            seen.append(snap)

        serve_once(tmp_path, workers=1, poll_seconds=0.02, on_progress=watch)
        assert seen, "on_progress never fired"
        # Mid-run snapshots say running; the done counts only grow, and
        # partial rows are served before the grid finishes.
        assert all(s["state"] == "running" for s in seen)
        counts = [s["jobs"][0]["done"] for s in seen]
        assert counts == sorted(counts)
        assert counts[0] < len(SPEC)
        assert len(seen[0]["jobs"][0]["rows"]) == counts[0]


class TestServeForever:
    def test_bounded_cycles_with_injected_sleep(self, tmp_path):
        _write_job(tmp_path, "j")
        naps = []
        report = serve_forever(
            tmp_path, workers=1, poll_seconds=0.02,
            idle_seconds=7.0, max_cycles=3, sleep=naps.append,
        )
        # Three cycles, sleeping between them but not after the last.
        assert naps == [7.0, 7.0]
        # The last cycle was a pure resume.
        assert report.executed == 0 and report.resumed == len(SPEC)

    def test_new_jobs_picked_up_between_cycles(self, tmp_path):
        _write_job(tmp_path, "first")
        executed = []

        def drop_job(seconds):
            _write_job(tmp_path, "second")

        report = serve_forever(
            tmp_path, workers=1, poll_seconds=0.02,
            max_cycles=2, sleep=drop_job,
        )
        executed.append(report.executed)
        # Cycle 2 found "second" fresh and resumed "first" untouched.
        assert report.executed == len(SPEC)
        assert report.resumed == len(SPEC)
        status = json.loads(serve_status_path(tmp_path).read_text())
        assert [j["name"] for j in status["jobs"]] == ["first", "second"]
