"""Backend provenance in sweep sharding: cell IDs, payloads, artifacts.

The ``stop_on_death`` lesson applied to host capability: a cell's
identity must pin the *resolved* kernel backend so resumed or merged
artifacts never silently mix rows computed on different backends.
"""

import pytest

from repro.kernels import numba_backend as numba_backend_mod
from repro.kernels import registry as registry_mod
from repro.parallel.sharding import SweepSpec, load_artifact, run_shard

SPEC = SweepSpec(protocols=("direct",), lambdas=(4.0,), seeds=(0,), rounds=2)


def _force_numba(monkeypatch, version):
    monkeypatch.setattr(numba_backend_mod, "numba_version", lambda: version)
    monkeypatch.setattr(registry_mod, "numba_version", lambda: version)
    registry_mod._INSTANCES.pop("numba", None)


class TestSpecBackendField:
    def test_default_selector_is_auto(self):
        assert SPEC.backend == "auto"

    def test_payload_roundtrip_keeps_selector(self):
        spec = SweepSpec(
            protocols=("direct",), lambdas=(4.0,), seeds=(0,),
            backend="numpy",
        )
        payload = spec.to_payload()
        assert payload["backend"] == "numpy"
        assert SweepSpec.from_payload(payload) == spec

    def test_fingerprint_covers_backend_selector(self):
        a = SweepSpec(protocols=("direct",), lambdas=(4.0,), seeds=(0,))
        b = SweepSpec(
            protocols=("direct",), lambdas=(4.0,), seeds=(0,),
            backend="numpy",
        )
        assert a.fingerprint != b.fingerprint

    def test_rejects_empty_backend(self):
        with pytest.raises(ValueError, match="backend"):
            SweepSpec(
                protocols=("direct",), lambdas=(4.0,), seeds=(0,),
                backend="",
            )


class TestCellIdentity:
    def test_cells_pin_resolved_backend(self, monkeypatch):
        _force_numba(monkeypatch, None)
        for cell in SPEC.cells():
            assert cell.backend == "numpy"  # resolved, never "auto"

    def test_cell_ids_differ_across_resolved_backends(self, monkeypatch):
        """The same 'auto' spec on a numba-capable host enumerates
        *different* cell IDs than on a numpy-only host — so a resume
        or merge across the capability boundary recomputes instead of
        silently mixing backends."""
        _force_numba(monkeypatch, None)
        numpy_cells = SPEC.cells()
        _force_numba(monkeypatch, "99.0-fake")
        numba_cells = SPEC.cells()

        assert [c.backend for c in numpy_cells] == ["numpy"]
        assert [c.backend for c in numba_cells] == ["numba"]
        assert {c.cell_id for c in numpy_cells}.isdisjoint(
            c.cell_id for c in numba_cells
        )
        # The config fingerprint moves too: the backend is part of the
        # scenario config the cell runs.
        assert (
            numpy_cells[0].config_fingerprint
            != numba_cells[0].config_fingerprint
        )

    def test_explicit_selector_matches_resolution(self):
        explicit = SweepSpec(
            protocols=("direct",), lambdas=(4.0,), seeds=(0,), rounds=2,
            backend="numpy",
        )
        assert [c.backend for c in explicit.cells()] == ["numpy"]


class TestArtifactProvenance:
    def test_cell_rows_record_backend(self, tmp_path):
        spec = SweepSpec(
            protocols=("direct",), lambdas=(4.0,), seeds=(0,), rounds=2,
            backend="numpy",
        )
        result = run_shard(spec, 1, 1, tmp_path / "s.jsonl", serial=True)
        assert result.ok
        art = load_artifact(result.path)
        assert art.manifest["spec"]["backend"] == "numpy"
        for row in art.cell_rows:
            assert row["backend"] == "numpy"

    def test_backend_switch_invalidates_resume(self, tmp_path, monkeypatch):
        """Rows computed under one resolved backend are stale for a
        spec resolving to another: every cell recomputes."""
        path = tmp_path / "s.jsonl"
        _force_numba(monkeypatch, None)
        first = run_shard(SPEC, 1, 1, path, serial=True)
        assert len(first.executed) == len(SPEC)

        # Same spec, same host — resume recomputes nothing.
        again = run_shard(SPEC, 1, 1, path, serial=True)
        assert again.executed == []

        # Fake a numba-capable host: identity moves, rows are stale.
        # (run_shard would then *execute* on the faked backend and
        # fail, so only check the partition bookkeeping.)
        _force_numba(monkeypatch, "99.0-fake")
        stale_ids = {c.cell_id for c in SPEC.cells()}
        assert stale_ids.isdisjoint(first.executed)
