"""The pinned deterministic-vs-transient failure taxonomy.

This table is the spec that `_guarded_cell`'s retry policy and the
scheduler's re-lease policy run on: a *deterministic* failure is a pure
function of the cell's inputs (retrying or re-leasing it cannot change
the outcome), a *transient* one is environmental and may heal between
attempts.  Changing a classification changes how many times a cluster
re-runs a failing cell — it should be a deliberate edit here, not an
accident of an exception hierarchy.
"""

import pickle

import pytest

from repro.parallel.sharding import _guarded_cell, classify_error

#: (exception instance, expected class) — the taxonomy table.
TAXONOMY = [
    # Bad values / types / lookups: the cell itself is broken.
    (ValueError("bad lambda"), "deterministic"),
    (TypeError("not callable"), "deterministic"),
    (KeyError("protocol"), "deterministic"),
    (IndexError("row 9 of 3"), "deterministic"),
    (AttributeError("no such field"), "deterministic"),
    (AssertionError("invariant broke"), "deterministic"),
    (ZeroDivisionError("k == 0"), "deterministic"),
    (OverflowError("energy overflow"), "deterministic"),
    (NotImplementedError("protocol stub"), "deterministic"),
    # Serialising the same result fails the same way on every worker.
    (pickle.PicklingError("unpicklable summary"), "deterministic"),
    (pickle.UnpicklingError("corrupt payload"), "deterministic"),
    # RecursionError subclasses RuntimeError, but unbounded recursion
    # is a property of the computation, not of the host.
    (RecursionError("maximum depth"), "deterministic"),
    # Environmental: may heal between attempts.
    (RuntimeError("worker wedged"), "transient"),
    (OSError("flaky filesystem"), "transient"),
    (FileNotFoundError("dataset moved"), "transient"),
    (PermissionError("mount remounted ro"), "transient"),
    (TimeoutError("peer slow"), "transient"),
    (ConnectionResetError("broker dropped"), "transient"),
    (BrokenPipeError("pool pipe died"), "transient"),
    (MemoryError("host under pressure"), "transient"),
    (InterruptedError("signal during read"), "transient"),
    (BlockingIOError("EAGAIN"), "transient"),
]


@pytest.mark.parametrize(
    "exc, expected",
    TAXONOMY,
    ids=[type(e).__name__ for e, _ in TAXONOMY],
)
def test_taxonomy(exc, expected):
    assert classify_error(exc) == expected


def test_base_exceptions_classify_transient():
    # An interrupted worker says nothing about the cell.  _guarded_cell
    # never absorbs these (BaseException rips through), but the
    # scheduler records the classification for a lease it reclaims.
    assert classify_error(KeyboardInterrupt()) == "transient"
    assert classify_error(SystemExit(1)) == "transient"


class TestGuardedCellPolicy:
    """The retry policy the taxonomy drives."""

    def test_deterministic_failure_never_retried(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("same inputs, same crash")

        status, payload, attempts = _guarded_cell(boom, (), retries=5)
        assert status == "error"
        assert payload["class"] == "deterministic"
        assert payload["type"] == "ValueError"
        assert attempts == 1
        assert len(calls) == 1

    def test_transient_failure_consumes_retry_budget(self):
        calls = []

        def flaky():
            calls.append(1)
            raise OSError("still flaky")

        status, payload, attempts = _guarded_cell(flaky, (), retries=2)
        assert status == "error"
        assert payload["class"] == "transient"
        assert attempts == 3
        assert len(calls) == 3

    def test_transient_failure_heals_mid_budget(self):
        calls = []

        def heals():
            calls.append(1)
            if len(calls) < 2:
                raise OSError("first try flaky")
            return {"ok": True}

        status, payload, attempts = _guarded_cell(heals, (), retries=2)
        assert status == "ok"
        assert payload == {"ok": True}
        assert attempts == 2
