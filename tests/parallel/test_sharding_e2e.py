"""End-to-end shard determinism, resume, and failure-path coverage.

These are the acceptance tests of the sharding layer: a grid executed
as 1, 3, or N shards (in any merge order) must equal the serial sweep
bit for bit on every deterministic metric; resume must recompute
nothing when nothing changed and exactly the invalidated cells when
the config fingerprint moves; and a cell that keeps raising in a
worker must surface as an error row, not a lost cell or a dead shard.
"""

import json

import pytest

from repro.analysis.sweep import run_cell, sweep_from_spec
from repro.parallel.sharding import (
    CELL_ERROR_KIND,
    CELL_KIND,
    SweepSpec,
    classify_error,
    load_artifact,
    merge_artifacts,
    run_shard,
)
from repro.telemetry import deterministic_view

SPEC = SweepSpec(
    protocols=("direct", "kmeans"),
    lambdas=(4.0, 8.0),
    seeds=(0, 1),
    rounds=2,
    telemetry=True,
)


@pytest.fixture(scope="module")
def serial_sweep():
    return sweep_from_spec(SPEC, serial=True)


def _run_all_shards(spec, num_shards, root, **kwargs):
    return [
        run_shard(
            spec, k, num_shards, root / f"shard-{k}of{num_shards}.jsonl",
            serial=True, **kwargs,
        )
        for k in range(1, num_shards + 1)
    ]


class TestShardDeterminism:
    @pytest.mark.parametrize("num_shards", [1, 3, len(SPEC)])
    def test_k_shards_equal_serial(
        self, num_shards, serial_sweep, tmp_path
    ):
        results = _run_all_shards(SPEC, num_shards, tmp_path)
        assert sum(len(r.executed) for r in results) == len(SPEC)
        merged = merge_artifacts(
            [r.path for r in reversed(results)]
        ).require_complete()
        assert merged.sweep.rows == serial_sweep.rows
        assert deterministic_view(merged.sweep.telemetry) == deterministic_view(
            serial_sweep.telemetry
        )

    def test_pooled_shard_equals_serial_shard(self, tmp_path):
        """The pool inside one shard cannot leak into its artifact."""
        spec = SweepSpec(
            protocols=("direct",), lambdas=(8.0,), seeds=(0, 1, 2), rounds=2
        )
        a = run_shard(spec, 1, 1, tmp_path / "serial.jsonl", serial=True)
        b = run_shard(spec, 1, 1, tmp_path / "pooled.jsonl", max_workers=2)
        assert (
            merge_artifacts([a.path]).sweep.rows
            == merge_artifacts([b.path]).sweep.rows
        )


class TestResume:
    def test_full_resume_recomputes_nothing(self, tmp_path):
        results = _run_all_shards(SPEC, 3, tmp_path)
        before = [r.path.read_bytes() for r in results]
        again = _run_all_shards(SPEC, 3, tmp_path)
        for first, second in zip(results, again):
            assert second.executed == []
            assert sorted(second.skipped) == sorted(
                c.cell_id for c in first.cells
            )
        assert [r.path.read_bytes() for r in again] == before

    def test_partial_resume_recomputes_only_missing(
        self, serial_sweep, tmp_path
    ):
        result = run_shard(SPEC, 1, 1, tmp_path / "all.jsonl", serial=True)
        # Simulate a crash: drop the trailer and the last two cell rows.
        lines = result.path.read_text().splitlines()
        assert len(lines) == 1 + len(SPEC) + 1  # manifest + cells + trailer
        result.path.write_text("\n".join(lines[:-3]) + "\n")
        lost = {
            json.loads(line)["cell_id"] for line in lines[-3:-1]
        }

        resumed = run_shard(SPEC, 1, 1, result.path, serial=True)
        assert set(resumed.executed) == lost
        assert len(resumed.skipped) == len(SPEC) - 2
        merged = merge_artifacts([result.path]).require_complete()
        assert merged.sweep.rows == serial_sweep.rows

    def test_crash_during_resume_preserves_retained_rows(self, tmp_path):
        """The rewrite is atomic (temp file + os.replace): a crash
        while the resumed run is simulating must not lose the rows
        that were already on disk."""
        result = run_shard(SPEC, 1, 1, tmp_path / "shard.jsonl", serial=True)
        lines = result.path.read_text().splitlines()
        result.path.write_text("\n".join(lines[:-3]) + "\n")
        kept = {json.loads(line)["cell_id"] for line in lines[1:-3]}
        lost = {json.loads(line)["cell_id"] for line in lines[-3:-1]}

        with pytest.raises(KeyboardInterrupt):
            run_shard(
                SPEC, 1, 1, result.path,
                serial=True, cell_fn=_interrupting_cell,
            )
        art = load_artifact(result.path)
        assert {r["cell_id"] for r in art.cell_rows} == kept
        assert not list(tmp_path.glob("*.tmp"))

        healed = run_shard(SPEC, 1, 1, result.path, serial=True)
        assert set(healed.executed) == lost
        merge_artifacts([result.path]).require_complete()

    def test_no_resume_flag_recomputes_everything(self, tmp_path):
        path = tmp_path / "shard.jsonl"
        run_shard(SPEC, 1, 1, path, serial=True)
        rerun = run_shard(SPEC, 1, 1, path, serial=True, resume=False)
        assert len(rerun.executed) == len(SPEC)
        assert rerun.skipped == []

    def test_fingerprint_change_invalidates_rows(self, tmp_path):
        """Same grid coordinates, different scenario config: every row
        is stale and must be recomputed, none silently reused."""
        path = tmp_path / "shard.jsonl"
        run_shard(SPEC, 1, 1, path, serial=True)
        changed = SweepSpec(
            protocols=SPEC.protocols,
            lambdas=SPEC.lambdas,
            seeds=SPEC.seeds,
            initial_energy=SPEC.initial_energy,
            rounds=3,  # changes every cell's config fingerprint
            telemetry=True,
        )
        resumed = run_shard(changed, 1, 1, path, serial=True)
        assert len(resumed.executed) == len(changed)
        assert resumed.skipped == []
        art = load_artifact(path)
        fingerprints = {
            r["config_fingerprint"] for r in art.cell_rows
        }
        assert fingerprints == {
            c.config_fingerprint for c in changed.cells()
        }
        assert art.manifest["spec_fingerprint"] == changed.fingerprint

    def test_stop_on_death_change_invalidates_rows(self, tmp_path):
        """stop_on_death lives outside SimulationConfig (it is a
        run_simulation kwarg), yet flipping it changes the run's
        outcome: resume must recompute every cell, never reuse rows
        computed under the other setting."""
        path = tmp_path / "shard.jsonl"
        run_shard(SPEC, 1, 1, path, serial=True)
        flipped = SweepSpec(
            protocols=SPEC.protocols,
            lambdas=SPEC.lambdas,
            seeds=SPEC.seeds,
            initial_energy=SPEC.initial_energy,
            rounds=SPEC.rounds,
            stop_on_death=True,
            telemetry=True,
        )
        resumed = run_shard(flipped, 1, 1, path, serial=True)
        assert len(resumed.executed) == len(flipped)
        assert resumed.skipped == []
        art = load_artifact(path)
        assert {r["cell_id"] for r in art.cell_rows} == {
            c.cell_id for c in flipped.cells()
        }
        assert art.manifest["spec_fingerprint"] == flipped.fingerprint

    def test_uninstrumented_rows_not_reused_for_instrumented_spec(
        self, tmp_path
    ):
        bare = SweepSpec(
            protocols=SPEC.protocols, lambdas=SPEC.lambdas, seeds=SPEC.seeds,
            rounds=SPEC.rounds, telemetry=False,
        )
        path = tmp_path / "shard.jsonl"
        run_shard(bare, 1, 1, path, serial=True)
        resumed = run_shard(SPEC, 1, 1, path, serial=True)
        assert len(resumed.executed) == len(SPEC)
        merged = merge_artifacts([path]).require_complete()
        assert merged.sweep.telemetry is not None


def _interrupting_cell(*args):
    """Stand-in for a hard crash (SIGINT) mid-shard: _guarded_cell
    absorbs Exception but BaseException rips through run_shard."""
    raise KeyboardInterrupt


# --- failure injection ------------------------------------------------------

#: Module-level so the injected cell function stays picklable; mutated
#: by the tests (shards run serial, so the state is visible in-process).
_FAULT = {"seeds": set(), "flaky_first_attempt": False, "calls": {}}


def _reset_fault():
    _FAULT["seeds"] = set()
    _FAULT["flaky_first_attempt"] = False
    _FAULT["calls"] = {}


def faulty_cell(
    protocol, lam, seed, initial_energy, rounds, stop, telemetry,
    backend="auto", faults=None, equivalence="bitwise", max_block_mb=None,
    routing="direct",
):
    key = (protocol, lam, seed)
    _FAULT["calls"][key] = _FAULT["calls"].get(key, 0) + 1
    if seed in _FAULT["seeds"]:
        raise RuntimeError(f"injected fault for seed {seed}")
    if _FAULT["flaky_first_attempt"] and _FAULT["calls"][key] == 1:
        raise RuntimeError("transient fault on first attempt")
    return run_cell(
        protocol, lam, seed,
        initial_energy=initial_energy, rounds=rounds,
        stop_on_death=stop, telemetry=telemetry, backend=backend,
        faults=faults, equivalence=equivalence, max_block_mb=max_block_mb,
        routing=routing,
    )


class TestFailurePaths:
    def setup_method(self):
        _reset_fault()

    def test_faulty_cell_becomes_error_row_and_shard_completes(
        self, tmp_path
    ):
        _FAULT["seeds"] = {1}
        path = tmp_path / "shard.jsonl"
        result = run_shard(
            SPEC, 1, 1, path, serial=True, cell_fn=faulty_cell, retries=1
        )
        bad = {c.cell_id for c in SPEC.cells() if c.seed == 1}
        assert {e["cell_id"] for e in result.errors} == bad
        assert len(result.executed) == len(SPEC) - len(bad)

        art = load_artifact(path)
        assert {r["cell_id"] for r in art.error_rows} == bad
        for row in art.error_rows:
            assert row["kind"] == CELL_ERROR_KIND
            assert row["error"]["type"] == "RuntimeError"
            assert row["attempts"] == 2  # first try + one retry

    def test_merge_reports_error_rows(self, serial_sweep, tmp_path):
        _FAULT["seeds"] = {1}
        path = tmp_path / "shard.jsonl"
        run_shard(SPEC, 1, 1, path, serial=True, cell_fn=faulty_cell)
        merged = merge_artifacts([path])
        assert not merged.complete
        assert {e["cell_id"] for e in merged.errors} == {
            c.cell_id for c in SPEC.cells() if c.seed == 1
        }
        assert merged.missing == []
        # The healthy cells still merged correctly.
        good = [r for r in serial_sweep.rows if r["seed"] != 1]
        assert merged.sweep.rows == good
        with pytest.raises(ValueError, match="error cell"):
            merged.require_complete()

    def test_resume_retries_errored_cells_after_fault_cleared(
        self, serial_sweep, tmp_path
    ):
        _FAULT["seeds"] = {1}
        path = tmp_path / "shard.jsonl"
        first = run_shard(
            SPEC, 1, 1, path, serial=True, cell_fn=faulty_cell
        )
        bad = {e["cell_id"] for e in first.errors}

        _FAULT["seeds"] = set()  # clear the fault
        resumed = run_shard(
            SPEC, 1, 1, path, serial=True, cell_fn=faulty_cell
        )
        assert set(resumed.executed) == bad
        assert resumed.errors == []
        art = load_artifact(path)
        assert art.error_rows == []

        merged = merge_artifacts([path]).require_complete()
        assert merged.sweep.rows == serial_sweep.rows
        assert deterministic_view(merged.sweep.telemetry) == deterministic_view(
            serial_sweep.telemetry
        )

    def test_in_worker_retry_absorbs_transient_fault(self, tmp_path):
        _FAULT["flaky_first_attempt"] = True
        path = tmp_path / "shard.jsonl"
        result = run_shard(
            SPEC, 1, 1, path, serial=True, cell_fn=faulty_cell, retries=1
        )
        assert result.errors == []
        assert len(result.executed) == len(SPEC)
        art = load_artifact(path)
        assert all(r["attempts"] == 2 for r in art.cell_rows)
        assert all(r["kind"] == CELL_KIND for r in art.cell_rows)

    def test_zero_retries_fails_fast(self, tmp_path):
        _FAULT["flaky_first_attempt"] = True
        result = run_shard(
            SPEC, 1, 1, tmp_path / "shard.jsonl",
            serial=True, cell_fn=faulty_cell, retries=0,
        )
        assert len(result.errors) == len(SPEC)
        assert all(e["attempts"] == 1 for e in result.errors)


def _deterministic_faulty_cell(
    protocol, lam, seed, initial_energy, rounds, stop, telemetry,
    backend="auto", faults=None, equivalence="bitwise", max_block_mb=None,
    routing="direct",
):
    """Fails like a code bug, not like a flaky environment."""
    key = (protocol, lam, seed)
    _FAULT["calls"][key] = _FAULT["calls"].get(key, 0) + 1
    if seed in _FAULT["seeds"]:
        raise ValueError(f"deterministic bug for seed {seed}")
    return run_cell(
        protocol, lam, seed,
        initial_energy=initial_energy, rounds=rounds,
        stop_on_death=stop, telemetry=telemetry, backend=backend,
        faults=faults, equivalence=equivalence, max_block_mb=max_block_mb,
        routing=routing,
    )


class TestErrorClassification:
    def setup_method(self):
        _reset_fault()

    def test_classify_error(self):
        assert classify_error(ValueError("x")) == "deterministic"
        assert classify_error(KeyError("x")) == "deterministic"  # LookupError
        assert classify_error(ZeroDivisionError()) == "deterministic"
        assert classify_error(RuntimeError("x")) == "transient"
        assert classify_error(OSError("x")) == "transient"
        assert classify_error(MemoryError()) == "transient"

    def test_deterministic_error_is_not_retried(self, tmp_path):
        _FAULT["seeds"] = {1}
        result = run_shard(
            SPEC, 1, 1, tmp_path / "shard.jsonl",
            serial=True, cell_fn=_deterministic_faulty_cell, retries=3,
        )
        bad = {c.cell_id for c in SPEC.cells() if c.seed == 1}
        assert {e["cell_id"] for e in result.errors} == bad
        # One attempt each despite the generous retry budget: replaying
        # a pure function of the inputs cannot heal it.
        assert all(e["attempts"] == 1 for e in result.errors)
        for key, calls in _FAULT["calls"].items():
            assert calls == 1, key

    def test_error_rows_record_class(self, tmp_path):
        _FAULT["seeds"] = {1}
        run_shard(
            SPEC, 1, 1, tmp_path / "det.jsonl",
            serial=True, cell_fn=_deterministic_faulty_cell, retries=1,
        )
        art = load_artifact(tmp_path / "det.jsonl")
        assert all(
            r["error"]["class"] == "deterministic" for r in art.error_rows
        )
        run_shard(
            SPEC, 1, 1, tmp_path / "trans.jsonl",
            serial=True, cell_fn=faulty_cell, retries=1,
        )
        art = load_artifact(tmp_path / "trans.jsonl")
        assert art.error_rows  # RuntimeError seam
        assert all(
            r["error"]["class"] == "transient" for r in art.error_rows
        )
        assert all(r["attempts"] == 2 for r in art.error_rows)


class TestFaultSweeps:
    SPEC_CHAOS = SweepSpec(
        protocols=("direct", "kmeans"), lambdas=(4.0,), seeds=(0, 1),
        rounds=4, faults="churn",
    )

    def test_fault_cells_never_collide_with_fault_free(self):
        plain = SweepSpec(
            protocols=self.SPEC_CHAOS.protocols,
            lambdas=self.SPEC_CHAOS.lambdas,
            seeds=self.SPEC_CHAOS.seeds,
            rounds=self.SPEC_CHAOS.rounds,
        )
        chaos_ids = {c.cell_id for c in self.SPEC_CHAOS.cells()}
        plain_ids = {c.cell_id for c in plain.cells()}
        assert not chaos_ids & plain_ids

    def test_sharded_fault_sweep_equals_serial(self, tmp_path):
        serial = sweep_from_spec(self.SPEC_CHAOS, serial=True)
        results = _run_all_shards(self.SPEC_CHAOS, 2, tmp_path)
        merged = merge_artifacts(
            [r.path for r in results]
        ).require_complete()
        assert merged.sweep.rows == serial.rows

    def test_spec_payload_round_trips_faults(self):
        payload = self.SPEC_CHAOS.to_payload()
        assert payload["faults"] == "churn"
        again = SweepSpec.from_payload(json.loads(json.dumps(payload)))
        assert again == self.SPEC_CHAOS
        assert again.fingerprint == self.SPEC_CHAOS.fingerprint
